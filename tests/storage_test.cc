// Unit and property tests for src/storage: the simulated block device's
// random/sequential accounting, the LRU buffer pool, and extent IO.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "storage/block_device.h"
#include "storage/block_file.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"

namespace streach {
namespace {

// ---------------------------------------------------------------- IoStats

TEST(IoStatsTest, NormalizedCostUses20To1) {
  IoStats s;
  s.random_reads = 3;
  s.sequential_reads = 40;
  EXPECT_DOUBLE_EQ(s.NormalizedReadCost(), 3 + 40 / 20.0);
  s.random_writes = 1;
  s.sequential_writes = 20;
  EXPECT_DOUBLE_EQ(s.NormalizedCost(), 3 + 2.0 + 1 + 1.0);
}

TEST(IoStatsTest, Difference) {
  IoStats a, b;
  a.random_reads = 10;
  a.sequential_reads = 5;
  b.random_reads = 4;
  b.sequential_reads = 2;
  const IoStats d = a - b;
  EXPECT_EQ(d.random_reads, 6u);
  EXPECT_EQ(d.sequential_reads, 3u);
}

// ------------------------------------------------------------ BlockDevice

TEST(BlockDeviceTest, AllocateAndRoundTrip) {
  BlockDevice dev(128);
  const PageId p = dev.AllocatePage();
  EXPECT_EQ(p, 0u);
  ASSERT_TRUE(dev.WritePage(p, "hello").ok());
  auto r = dev.ReadPage(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->substr(0, 5), "hello");
  EXPECT_EQ(r->size(), 128u);  // Zero padded.
}

TEST(BlockDeviceTest, OutOfRangeAccess) {
  BlockDevice dev(128);
  EXPECT_TRUE(dev.ReadPage(0).status().IsOutOfRange());
  EXPECT_TRUE(dev.WritePage(7, "x").IsOutOfRange());
}

TEST(BlockDeviceTest, OversizedWriteRejected) {
  BlockDevice dev(4);
  const PageId p = dev.AllocatePage();
  EXPECT_TRUE(dev.WritePage(p, "too long").IsInvalidArgument());
}

TEST(BlockDeviceTest, SequentialReadsDetected) {
  BlockDevice dev(64);
  dev.AllocatePages(10);
  dev.ResetStats();
  for (PageId p = 0; p < 10; ++p) ASSERT_TRUE(dev.ReadPage(p).ok());
  // First access is a seek, the following 9 are sequential.
  EXPECT_EQ(dev.stats().random_reads, 1u);
  EXPECT_EQ(dev.stats().sequential_reads, 9u);
}

TEST(BlockDeviceTest, BackwardAndSkippingReadsAreRandom) {
  BlockDevice dev(64);
  dev.AllocatePages(10);
  dev.ResetStats();
  ASSERT_TRUE(dev.ReadPage(5).ok());
  ASSERT_TRUE(dev.ReadPage(4).ok());  // Backward: random.
  ASSERT_TRUE(dev.ReadPage(6).ok());  // Skip: random.
  ASSERT_TRUE(dev.ReadPage(7).ok());  // Sequential.
  ASSERT_TRUE(dev.ReadPage(7).ok());  // Same page again: random (seek).
  EXPECT_EQ(dev.stats().random_reads, 4u);
  EXPECT_EQ(dev.stats().sequential_reads, 1u);
}

TEST(BlockDeviceTest, WritesTrackedSeparately) {
  BlockDevice dev(64);
  dev.AllocatePages(3);
  dev.ResetStats();
  ASSERT_TRUE(dev.WritePage(0, "a").ok());
  ASSERT_TRUE(dev.WritePage(1, "b").ok());
  ASSERT_TRUE(dev.WritePage(2, "c").ok());
  EXPECT_EQ(dev.stats().random_writes, 1u);
  EXPECT_EQ(dev.stats().sequential_writes, 2u);
  EXPECT_EQ(dev.stats().total_reads(), 0u);
}

TEST(BlockDeviceTest, ReadAfterAdjacentWriteIsSequential) {
  BlockDevice dev(64);
  dev.AllocatePages(3);
  dev.ResetStats();
  ASSERT_TRUE(dev.WritePage(0, "a").ok());
  ASSERT_TRUE(dev.ReadPage(1).ok());  // Head is just past page 0.
  EXPECT_EQ(dev.stats().sequential_reads, 1u);
}

// ------------------------------------------------------------- BufferPool

TEST(BufferPoolTest, HitAvoidsDeviceRead) {
  BlockDevice dev(64);
  dev.AllocatePages(4);
  BufferPool pool(&dev, 4);
  ASSERT_TRUE(pool.Fetch(2).ok());
  const uint64_t reads_before = pool.io_stats().total_reads();
  ASSERT_TRUE(pool.Fetch(2).ok());
  EXPECT_EQ(pool.io_stats().total_reads(), reads_before);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BlockDevice dev(64);
  dev.AllocatePages(4);
  BufferPool pool(&dev, 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // Touch 0 -> 1 becomes LRU.
  ASSERT_TRUE(pool.Fetch(2).ok());  // Evicts 1.
  EXPECT_EQ(pool.resident(), 2u);
  const uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.Fetch(0).ok());  // Still resident.
  EXPECT_EQ(pool.misses(), misses_before);
  ASSERT_TRUE(pool.Fetch(1).ok());  // Was evicted -> miss.
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST(BufferPoolTest, ClearDropsEverything) {
  BlockDevice dev(64);
  dev.AllocatePages(2);
  BufferPool pool(&dev, 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  pool.Clear();
  EXPECT_EQ(pool.resident(), 0u);
  const uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST(BufferPoolTest, ReturnsPageContents) {
  BlockDevice dev(8);
  const PageId p = dev.AllocatePage();
  ASSERT_TRUE(dev.WritePage(p, "abcd").ok());
  BufferPool pool(&dev, 1);
  auto data = pool.Fetch(p);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->view().substr(0, 4), "abcd");
}

TEST(BufferPoolTest, FetchedViewSurvivesEvictionOfItsPage) {
  // Regression: a traversal step may hold the view of one page while a
  // later fetch in the same step evicts it (capacity 1 forces this on
  // every second fetch). The first view must remain readable.
  BlockDevice dev(8);
  const PageId a = dev.AllocatePage();
  const PageId b = dev.AllocatePage();
  ASSERT_TRUE(dev.WritePage(a, "aaaa").ok());
  ASSERT_TRUE(dev.WritePage(b, "bbbb").ok());
  BufferPool pool(&dev, 1);
  auto first = pool.Fetch(a);
  ASSERT_TRUE(first.ok());
  auto second = pool.Fetch(b);  // Evicts page `a` from the pool.
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(pool.resident(), 1u);
  EXPECT_EQ(first->view().substr(0, 4), "aaaa");  // Still valid.
  EXPECT_EQ(second->view().substr(0, 4), "bbbb");
  // And the pool serves fresh fetches of the evicted page correctly.
  auto again = pool.Fetch(a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->view().substr(0, 4), "aaaa");
}

TEST(BufferPoolTest, ConcurrentPoolsOverOneDeviceAgree) {
  // The engine's concurrency model: one immutable device, one pool (and
  // one IO cursor) per thread. Each pool's accounting is private.
  BlockDevice dev(16);
  dev.AllocatePages(8);
  for (PageId p = 0; p < 8; ++p) {
    ASSERT_TRUE(dev.WritePage(p, std::string(4, static_cast<char>('a' + p))).ok());
  }
  BufferPool pool_a(&dev, 2);
  BufferPool pool_b(&dev, 2);
  ASSERT_TRUE(pool_a.Fetch(0).ok());
  ASSERT_TRUE(pool_b.Fetch(0).ok());
  ASSERT_TRUE(pool_b.Fetch(1).ok());
  EXPECT_EQ(pool_a.misses(), 1u);
  EXPECT_EQ(pool_b.misses(), 2u);
  EXPECT_EQ(pool_a.io_stats().total_reads(), 1u);
  EXPECT_EQ(pool_b.io_stats().total_reads(), 2u);
  // pool_b's second read followed its first: sequential on its own cursor.
  EXPECT_EQ(pool_b.io_stats().sequential_reads, 1u);
}

// ------------------------------------------------------------ ExtentWriter

TEST(ExtentWriterTest, PacksBlobsAcrossPages) {
  BlockDevice dev(16);
  ExtentWriter writer(&dev);
  auto e1 = writer.Append("0123456789");  // 10 bytes.
  auto e2 = writer.Append("abcdefghij");  // Crosses into page 1.
  ASSERT_TRUE(e1.ok() && e2.ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(e1->first_page, 0u);
  EXPECT_EQ(e1->offset_in_page, 0u);
  EXPECT_EQ(e2->first_page, 0u);
  EXPECT_EQ(e2->offset_in_page, 10u);
  EXPECT_EQ(e2->PageSpan(16), 2u);

  BufferPool pool(&dev, 4);
  EXPECT_EQ(*ReadExtent(&pool, *e1, 16), "0123456789");
  EXPECT_EQ(*ReadExtent(&pool, *e2, 16), "abcdefghij");
}

TEST(ExtentWriterTest, AlignToPageStartsFreshPage) {
  BlockDevice dev(16);
  ExtentWriter writer(&dev);
  ASSERT_TRUE(writer.Append("xxx").ok());
  ASSERT_TRUE(writer.AlignToPage().ok());
  auto e = writer.Append("yyy");
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(e->first_page, 1u);
  EXPECT_EQ(e->offset_in_page, 0u);
}

TEST(ExtentWriterTest, LargeBlobSpansManyPages) {
  BlockDevice dev(32);
  ExtentWriter writer(&dev);
  const std::string blob(300, 'z');
  auto e = writer.Append(blob);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(e->PageSpan(32), (300 + 31) / 32u);
  BufferPool pool(&dev, 16);
  EXPECT_EQ(*ReadExtent(&pool, *e, 32), blob);
}

TEST(ExtentWriterTest, SequentialReadOfConsecutiveBlobs) {
  // The disk-placement property both indexes rely on: blobs appended in
  // order occupy consecutive pages, so scanning them in order is
  // (almost entirely) sequential IO.
  BlockDevice dev(64);
  ExtentWriter writer(&dev);
  std::vector<Extent> extents;
  for (int i = 0; i < 50; ++i) {
    auto e = writer.Append(std::string(40, static_cast<char>('a' + i % 26)));
    ASSERT_TRUE(e.ok());
    extents.push_back(*e);
  }
  ASSERT_TRUE(writer.Flush().ok());
  BufferPool pool(&dev, 64);
  for (const Extent& e : extents) {
    ASSERT_TRUE(ReadExtent(&pool, e, 64).ok());
  }
  // One seek at the start; everything else sequential or buffered.
  EXPECT_EQ(pool.io_stats().random_reads, 1u);
  EXPECT_GT(pool.io_stats().sequential_reads, 0u);
}

TEST(ExtentWriterTest, RandomBlobsRoundTripProperty) {
  Rng rng(31);
  BlockDevice dev(128);
  ExtentWriter writer(&dev);
  std::vector<std::string> blobs;
  std::vector<Extent> extents;
  for (int i = 0; i < 200; ++i) {
    std::string blob;
    const size_t len = rng.Uniform(500);
    blob.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      blob.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto e = writer.Append(blob);
    ASSERT_TRUE(e.ok());
    blobs.push_back(std::move(blob));
    extents.push_back(*e);
  }
  ASSERT_TRUE(writer.Flush().ok());
  BufferPool pool(&dev, 8);
  // Read back in random order.
  for (int i = 0; i < 400; ++i) {
    const size_t k = rng.Uniform(extents.size());
    auto data = ReadExtent(&pool, extents[k], 128);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, blobs[k]);
  }
}

TEST(ReadExtentTest, InvalidExtentRejected) {
  BlockDevice dev(64);
  BufferPool pool(&dev, 2);
  EXPECT_TRUE(ReadExtent(&pool, Extent{}, 64).status().IsInvalidArgument());
}

}  // namespace
}  // namespace streach
