// Unit and property tests for src/storage: the simulated block device's
// random/sequential accounting, the LRU buffer pool, extent IO, and the
// sharded storage topology with routed page addresses.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/block_device.h"
#include "storage/block_file.h"
#include "storage/checksum.h"
#include "storage/buffer_pool.h"
#include "storage/build_pool.h"
#include "storage/io_stats.h"
#include "storage/storage_topology.h"

namespace streach {
namespace {

// ---------------------------------------------------------------- IoStats

TEST(IoStatsTest, NormalizedCostUses20To1) {
  IoStats s;
  s.random_reads = 3;
  s.sequential_reads = 40;
  EXPECT_DOUBLE_EQ(s.NormalizedReadCost(), 3 + 40 / 20.0);
  s.random_writes = 1;
  s.sequential_writes = 20;
  EXPECT_DOUBLE_EQ(s.NormalizedCost(), 3 + 2.0 + 1 + 1.0);
}

TEST(IoStatsTest, Difference) {
  IoStats a, b;
  a.random_reads = 10;
  a.sequential_reads = 5;
  b.random_reads = 4;
  b.sequential_reads = 2;
  const IoStats d = a - b;
  EXPECT_EQ(d.random_reads, 6u);
  EXPECT_EQ(d.sequential_reads, 3u);
}

// ------------------------------------------------------------ BlockDevice

TEST(BlockDeviceTest, AllocateAndRoundTrip) {
  BlockDevice dev(128);
  const PageId p = dev.AllocatePage();
  EXPECT_EQ(p, 0u);
  ASSERT_TRUE(dev.WritePage(p, "hello").ok());
  auto r = dev.ReadPage(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->substr(0, 5), "hello");
  EXPECT_EQ(r->size(), 128u);  // Zero padded.
}

TEST(BlockDeviceTest, OutOfRangeAccess) {
  BlockDevice dev(128);
  EXPECT_TRUE(dev.ReadPage(0).status().IsOutOfRange());
  EXPECT_TRUE(dev.WritePage(7, "x").IsOutOfRange());
}

TEST(BlockDeviceTest, OversizedWriteRejected) {
  BlockDevice dev(4);
  const PageId p = dev.AllocatePage();
  EXPECT_TRUE(dev.WritePage(p, "too long").IsInvalidArgument());
}

TEST(BlockDeviceTest, SequentialReadsDetected) {
  BlockDevice dev(64);
  dev.AllocatePages(10);
  dev.ResetStats();
  for (PageId p = 0; p < 10; ++p) ASSERT_TRUE(dev.ReadPage(p).ok());
  // First access is a seek, the following 9 are sequential.
  EXPECT_EQ(dev.stats().random_reads, 1u);
  EXPECT_EQ(dev.stats().sequential_reads, 9u);
}

TEST(BlockDeviceTest, BackwardAndSkippingReadsAreRandom) {
  BlockDevice dev(64);
  dev.AllocatePages(10);
  dev.ResetStats();
  ASSERT_TRUE(dev.ReadPage(5).ok());
  ASSERT_TRUE(dev.ReadPage(4).ok());  // Backward: random.
  ASSERT_TRUE(dev.ReadPage(6).ok());  // Skip: random.
  ASSERT_TRUE(dev.ReadPage(7).ok());  // Sequential.
  ASSERT_TRUE(dev.ReadPage(7).ok());  // Same page again: random (seek).
  EXPECT_EQ(dev.stats().random_reads, 4u);
  EXPECT_EQ(dev.stats().sequential_reads, 1u);
}

TEST(BlockDeviceTest, WritesTrackedSeparately) {
  BlockDevice dev(64);
  dev.AllocatePages(3);
  dev.ResetStats();
  ASSERT_TRUE(dev.WritePage(0, "a").ok());
  ASSERT_TRUE(dev.WritePage(1, "b").ok());
  ASSERT_TRUE(dev.WritePage(2, "c").ok());
  EXPECT_EQ(dev.stats().random_writes, 1u);
  EXPECT_EQ(dev.stats().sequential_writes, 2u);
  EXPECT_EQ(dev.stats().total_reads(), 0u);
}

TEST(BlockDeviceTest, ReadAfterAdjacentWriteIsSequential) {
  BlockDevice dev(64);
  dev.AllocatePages(3);
  dev.ResetStats();
  ASSERT_TRUE(dev.WritePage(0, "a").ok());
  ASSERT_TRUE(dev.ReadPage(1).ok());  // Head is just past page 0.
  EXPECT_EQ(dev.stats().sequential_reads, 1u);
}

// ------------------------------------------------------------- BufferPool

TEST(BufferPoolTest, HitAvoidsDeviceRead) {
  BlockDevice dev(64);
  dev.AllocatePages(4);
  BufferPool pool(&dev, 4);
  ASSERT_TRUE(pool.Fetch(2).ok());
  const uint64_t reads_before = pool.io_stats().total_reads();
  ASSERT_TRUE(pool.Fetch(2).ok());
  EXPECT_EQ(pool.io_stats().total_reads(), reads_before);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BlockDevice dev(64);
  dev.AllocatePages(4);
  BufferPool pool(&dev, 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // Touch 0 -> 1 becomes LRU.
  ASSERT_TRUE(pool.Fetch(2).ok());  // Evicts 1.
  EXPECT_EQ(pool.resident(), 2u);
  const uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.Fetch(0).ok());  // Still resident.
  EXPECT_EQ(pool.misses(), misses_before);
  ASSERT_TRUE(pool.Fetch(1).ok());  // Was evicted -> miss.
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST(BufferPoolTest, ClearDropsEverything) {
  BlockDevice dev(64);
  dev.AllocatePages(2);
  BufferPool pool(&dev, 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  pool.Clear();
  EXPECT_EQ(pool.resident(), 0u);
  const uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST(BufferPoolTest, ReturnsPageContents) {
  BlockDevice dev(8);
  const PageId p = dev.AllocatePage();
  ASSERT_TRUE(dev.WritePage(p, "abcd").ok());
  BufferPool pool(&dev, 1);
  auto data = pool.Fetch(p);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->view().substr(0, 4), "abcd");
}

TEST(BufferPoolTest, FetchedViewSurvivesEvictionOfItsPage) {
  // Regression: a traversal step may hold the view of one page while a
  // later fetch in the same step evicts it (capacity 1 forces this on
  // every second fetch). The first view must remain readable.
  BlockDevice dev(8);
  const PageId a = dev.AllocatePage();
  const PageId b = dev.AllocatePage();
  ASSERT_TRUE(dev.WritePage(a, "aaaa").ok());
  ASSERT_TRUE(dev.WritePage(b, "bbbb").ok());
  BufferPool pool(&dev, 1);
  auto first = pool.Fetch(a);
  ASSERT_TRUE(first.ok());
  auto second = pool.Fetch(b);  // Evicts page `a` from the pool.
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(pool.resident(), 1u);
  EXPECT_EQ(first->view().substr(0, 4), "aaaa");  // Still valid.
  EXPECT_EQ(second->view().substr(0, 4), "bbbb");
  // And the pool serves fresh fetches of the evicted page correctly.
  auto again = pool.Fetch(a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->view().substr(0, 4), "aaaa");
}

TEST(BufferPoolTest, ConcurrentPoolsOverOneDeviceAgree) {
  // The engine's concurrency model: one immutable device, one pool (and
  // one IO cursor) per thread. Each pool's accounting is private.
  BlockDevice dev(16);
  dev.AllocatePages(8);
  for (PageId p = 0; p < 8; ++p) {
    ASSERT_TRUE(dev.WritePage(p, std::string(4, static_cast<char>('a' + p))).ok());
  }
  BufferPool pool_a(&dev, 2);
  BufferPool pool_b(&dev, 2);
  ASSERT_TRUE(pool_a.Fetch(0).ok());
  ASSERT_TRUE(pool_b.Fetch(0).ok());
  ASSERT_TRUE(pool_b.Fetch(1).ok());
  EXPECT_EQ(pool_a.misses(), 1u);
  EXPECT_EQ(pool_b.misses(), 2u);
  EXPECT_EQ(pool_a.io_stats().total_reads(), 1u);
  EXPECT_EQ(pool_b.io_stats().total_reads(), 2u);
  // pool_b's second read followed its first: sequential on its own cursor.
  EXPECT_EQ(pool_b.io_stats().sequential_reads, 1u);
}

// ------------------------------------------------------------ ExtentWriter

TEST(ExtentWriterTest, PacksBlobsAcrossPages) {
  BlockDevice dev(16);
  ExtentWriter writer(&dev);
  auto e1 = writer.Append("0123456789");  // 10 bytes.
  auto e2 = writer.Append("abcdefghij");  // Crosses into page 1.
  ASSERT_TRUE(e1.ok() && e2.ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(e1->first_page, 0u);
  EXPECT_EQ(e1->offset_in_page, 0u);
  EXPECT_EQ(e2->first_page, 0u);
  // e1 stores 10 payload bytes + the 4-byte checksum footer.
  EXPECT_EQ(e2->offset_in_page, 10u + kBlobChecksumBytes);
  EXPECT_EQ(e2->PageSpan(16), 2u);

  BufferPool pool(&dev, 4);
  EXPECT_EQ(*ReadExtent(&pool, *e1, 16), "0123456789");
  EXPECT_EQ(*ReadExtent(&pool, *e2, 16), "abcdefghij");
}

TEST(ExtentWriterTest, AlignToPageStartsFreshPage) {
  BlockDevice dev(16);
  ExtentWriter writer(&dev);
  ASSERT_TRUE(writer.Append("xxx").ok());
  ASSERT_TRUE(writer.AlignToPage().ok());
  auto e = writer.Append("yyy");
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(e->first_page, 1u);
  EXPECT_EQ(e->offset_in_page, 0u);
}

TEST(ExtentWriterTest, LargeBlobSpansManyPages) {
  BlockDevice dev(32);
  ExtentWriter writer(&dev);
  const std::string blob(300, 'z');
  auto e = writer.Append(blob);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(e->PageSpan(32), (300 + 31) / 32u);
  BufferPool pool(&dev, 16);
  EXPECT_EQ(*ReadExtent(&pool, *e, 32), blob);
}

TEST(ExtentWriterTest, SequentialReadOfConsecutiveBlobs) {
  // The disk-placement property both indexes rely on: blobs appended in
  // order occupy consecutive pages, so scanning them in order is
  // (almost entirely) sequential IO.
  BlockDevice dev(64);
  ExtentWriter writer(&dev);
  std::vector<Extent> extents;
  for (int i = 0; i < 50; ++i) {
    auto e = writer.Append(std::string(40, static_cast<char>('a' + i % 26)));
    ASSERT_TRUE(e.ok());
    extents.push_back(*e);
  }
  ASSERT_TRUE(writer.Flush().ok());
  BufferPool pool(&dev, 64);
  for (const Extent& e : extents) {
    ASSERT_TRUE(ReadExtent(&pool, e, 64).ok());
  }
  // One seek at the start; everything else sequential or buffered.
  EXPECT_EQ(pool.io_stats().random_reads, 1u);
  EXPECT_GT(pool.io_stats().sequential_reads, 0u);
}

TEST(ExtentWriterTest, RandomBlobsRoundTripProperty) {
  Rng rng(31);
  BlockDevice dev(128);
  ExtentWriter writer(&dev);
  std::vector<std::string> blobs;
  std::vector<Extent> extents;
  for (int i = 0; i < 200; ++i) {
    std::string blob;
    const size_t len = rng.Uniform(500);
    blob.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      blob.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto e = writer.Append(blob);
    ASSERT_TRUE(e.ok());
    blobs.push_back(std::move(blob));
    extents.push_back(*e);
  }
  ASSERT_TRUE(writer.Flush().ok());
  BufferPool pool(&dev, 8);
  // Read back in random order.
  for (int i = 0; i < 400; ++i) {
    const size_t k = rng.Uniform(extents.size());
    auto data = ReadExtent(&pool, extents[k], 128);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, blobs[k]);
  }
}

TEST(ReadExtentTest, InvalidExtentRejected) {
  BlockDevice dev(64);
  BufferPool pool(&dev, 2);
  EXPECT_TRUE(ReadExtent(&pool, Extent{}, 64).status().IsInvalidArgument());
}

// -------------------------------------------------------- PageAddress

TEST(PageAddressTest, RoundTripsShardAndLocalPage) {
  const PageId addr = MakePageAddress(7, 12345);
  EXPECT_EQ(ShardOfPage(addr), 7u);
  EXPECT_EQ(LocalPageOf(addr), 12345u);
}

TEST(PageAddressTest, Shard0IsBitCompatibleWithPlainPageIds) {
  // The 1-shard bit-compatibility guarantee rests on this identity.
  for (PageId p : {PageId{0}, PageId{1}, PageId{999}, PageId{1} << 40}) {
    EXPECT_EQ(MakePageAddress(0, p), p);
    EXPECT_EQ(ShardOfPage(p), 0u);
    EXPECT_EQ(LocalPageOf(p), p);
  }
}

TEST(PageAddressTest, ConsecutiveLocalPagesAreConsecutiveAddresses) {
  // ReadExtent's `++page` arithmetic relies on this within one shard.
  const PageId addr = MakePageAddress(3, 41);
  EXPECT_EQ(addr + 1, MakePageAddress(3, 42));
}

// ---------------------------------------------------- StorageTopology

TEST(StorageTopologyTest, OwnsIndependentShards) {
  StorageTopology topo(StorageTopologyOptions{4, 64});
  EXPECT_EQ(topo.num_shards(), 4);
  EXPECT_EQ(topo.page_size(), 64u);
  topo.shard(0)->AllocatePages(3);
  topo.shard(2)->AllocatePages(5);
  EXPECT_EQ(topo.num_pages(), 8u);
  EXPECT_EQ(topo.size_bytes(), 8 * 64u);
  EXPECT_EQ(topo.shard(1)->num_pages(), 0u);
}

TEST(StorageTopologyTest, PlacementIsDeterministic) {
  StorageTopology topo(StorageTopologyOptions{4, 64});
  for (uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(topo.ShardForPartition(k), k % 4);
  }
  // Object routing: any deterministic spread; single shard maps to 0.
  StorageTopology single(StorageTopologyOptions{1, 64});
  for (ObjectId o = 0; o < 16; ++o) {
    EXPECT_EQ(single.ShardForObject(o), 0u);
    EXPECT_LT(topo.ShardForObject(o), 4u);
    EXPECT_EQ(topo.ShardForObject(o), topo.ShardForObject(o));
  }
}

TEST(ShardedExtentWriterTest, RoutedBlobsRoundTripThroughTopologyPool) {
  StorageTopology topo(StorageTopologyOptions{3, 32});
  ShardedExtentWriter writer(&topo);
  std::vector<Extent> extents;
  std::vector<std::string> blobs;
  for (int i = 0; i < 30; ++i) {
    std::string blob(20 + i, static_cast<char>('a' + i % 26));
    auto e = writer.Append(static_cast<uint32_t>(i % 3), blob);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(ShardOfPage(e->first_page), static_cast<uint32_t>(i % 3));
    extents.push_back(*e);
    blobs.push_back(std::move(blob));
  }
  ASSERT_TRUE(writer.Flush().ok());
  BufferPool pool(&topo, 16);
  EXPECT_EQ(pool.num_shards(), 3);
  for (size_t i = 0; i < extents.size(); ++i) {
    auto data = ReadExtent(&pool, extents[i], 32);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, blobs[i]);
  }
}

TEST(ShardedExtentWriterTest, InterleavedAppendsStaySequentialPerShard) {
  // The point of per-shard devices: blobs routed round-robin are packed
  // back-to-back on their own shard, so an in-order scan of one shard's
  // blobs is sequential on that shard's head even though the append
  // order interleaved shards.
  StorageTopology topo(StorageTopologyOptions{2, 64});
  ShardedExtentWriter writer(&topo);
  std::vector<Extent> shard0_extents;
  for (int i = 0; i < 40; ++i) {
    auto e = writer.Append(static_cast<uint32_t>(i % 2), std::string(40, 'x'));
    ASSERT_TRUE(e.ok());
    if (i % 2 == 0) shard0_extents.push_back(*e);
  }
  ASSERT_TRUE(writer.Flush().ok());
  BufferPool pool(&topo, 64);
  for (const Extent& e : shard0_extents) {
    ASSERT_TRUE(ReadExtent(&pool, e, 64).ok());
  }
  // One seek at the start of the shard; the rest sequential or buffered.
  EXPECT_EQ(pool.shard_io_stats(0).random_reads, 1u);
  EXPECT_GT(pool.shard_io_stats(0).sequential_reads, 0u);
  EXPECT_EQ(pool.shard_io_stats(1).total_reads(), 0u);
}

TEST(BufferPoolTopologyTest, AggregatesAndRoutesPerShardCursors) {
  StorageTopology topo(StorageTopologyOptions{2, 16});
  topo.shard(0)->AllocatePages(4);
  topo.shard(1)->AllocatePages(4);
  ASSERT_TRUE(topo.shard(0)->WritePage(0, "s0p0").ok());
  ASSERT_TRUE(topo.shard(1)->WritePage(0, "s1p0").ok());
  BufferPool pool(&topo, 8);
  auto a = pool.Fetch(MakePageAddress(0, 0));
  auto b = pool.Fetch(MakePageAddress(1, 0));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->view().substr(0, 4), "s0p0");
  EXPECT_EQ(b->view().substr(0, 4), "s1p0");
  // Each access was the first on its own shard head: both random.
  EXPECT_EQ(pool.shard_io_stats(0).random_reads, 1u);
  EXPECT_EQ(pool.shard_io_stats(1).random_reads, 1u);
  EXPECT_EQ(pool.io_stats().total_reads(), 2u);
  const std::vector<IoStats> per_shard = pool.PerShardIoStats();
  ASSERT_EQ(per_shard.size(), 2u);
  EXPECT_EQ(per_shard[0].total_reads() + per_shard[1].total_reads(),
            pool.io_stats().total_reads());
  // A fetch routed to a shard beyond the topology is rejected.
  EXPECT_TRUE(pool.Fetch(MakePageAddress(5, 0)).status().IsOutOfRange());
  // Local page range errors surface from the owning shard's device.
  EXPECT_TRUE(pool.Fetch(MakePageAddress(1, 99)).status().IsOutOfRange());
}

TEST(BufferPoolTopologyTest, BareDevicePoolRejectsRoutedAddresses) {
  // A pool over a bare device must not silently strip shard bits and
  // alias a routed address onto a low local page.
  BlockDevice dev(16);
  dev.AllocatePages(2);
  ASSERT_TRUE(dev.WritePage(0, "page").ok());
  BufferPool pool(&dev, 2);
  EXPECT_TRUE(pool.Fetch(MakePageAddress(1, 0)).status().IsOutOfRange());
  ASSERT_TRUE(pool.Fetch(0).ok());  // Plain ids still served.
}

// ---------------------------------------------------- Async batch path

TEST(SubmitBatchTest, Depth1ServicesInRequestOrder) {
  // queue_depth == 1 must degenerate to the synchronous path: same
  // service order, same random/sequential accounting.
  BlockDevice dev(64);
  dev.AllocatePages(10);
  const std::vector<AsyncReadRequest> requests{{5, 0}, {3, 1}, {4, 2}};
  ReadCursor batched;
  std::vector<AsyncReadCompletion> completions;
  ASSERT_TRUE(dev.SubmitBatch(requests, 1, &batched, &completions).ok());
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].page, 5u);
  EXPECT_EQ(completions[1].page, 3u);
  EXPECT_EQ(completions[2].page, 4u);
  ReadCursor sync;
  for (PageId p : {PageId{5}, PageId{3}, PageId{4}}) {
    ASSERT_TRUE(dev.ReadPage(p, &sync).ok());
  }
  EXPECT_EQ(batched.stats.random_reads, sync.stats.random_reads);
  EXPECT_EQ(batched.stats.sequential_reads, sync.stats.sequential_reads);
  EXPECT_EQ(batched.stats.mean_inflight(), 1.0);
  for (const AsyncReadCompletion& c : completions) {
    EXPECT_EQ(c.inflight, 1u);
  }
}

TEST(SubmitBatchTest, DeepQueueReordersSeekAware) {
  // With the whole batch in flight the device services the shortest seek
  // first: [5, 3, 4] after reading page 2 becomes 3, 4, 5 — all
  // sequential. Depth 1 pays two seeks for the same batch.
  BlockDevice dev(64);
  dev.AllocatePages(10);
  ReadCursor cursor;
  ASSERT_TRUE(dev.ReadPage(2, &cursor).ok());
  cursor.stats.Reset();  // Keep the head position, drop the counters.
  const std::vector<AsyncReadRequest> requests{{5, 0}, {3, 1}, {4, 2}};
  std::vector<AsyncReadCompletion> completions;
  ASSERT_TRUE(dev.SubmitBatch(requests, 3, &cursor, &completions).ok());
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].page, 3u);
  EXPECT_EQ(completions[1].page, 4u);
  EXPECT_EQ(completions[2].page, 5u);
  // Tags still identify the original requests.
  EXPECT_EQ(completions[0].tag, 1u);
  EXPECT_EQ(completions[2].tag, 0u);
  EXPECT_EQ(cursor.stats.sequential_reads, 3u);
  EXPECT_EQ(cursor.stats.random_reads, 0u);
  // Occupancy: 3 in flight, then 2, then 1.
  EXPECT_EQ(cursor.stats.inflight_accum, 6u);
  EXPECT_EQ(cursor.stats.batched_reads, 3u);
  EXPECT_DOUBLE_EQ(cursor.stats.mean_inflight(), 2.0);
}

TEST(SubmitBatchTest, ValidatesBeforeAccounting) {
  BlockDevice dev(64);
  dev.AllocatePages(2);
  ReadCursor cursor;
  std::vector<AsyncReadCompletion> completions;
  const std::vector<AsyncReadRequest> requests{{0, 0}, {99, 1}};
  EXPECT_TRUE(
      dev.SubmitBatch(requests, 4, &cursor, &completions).IsOutOfRange());
  EXPECT_EQ(cursor.stats.total_reads(), 0u);
  EXPECT_TRUE(completions.empty());
}

TEST(TopologySubmitBatchTest, RoutesPerShardQueues) {
  StorageTopology topo(StorageTopologyOptions{2, 16});
  topo.shard(0)->AllocatePages(4);
  topo.shard(1)->AllocatePages(4);
  ASSERT_TRUE(topo.shard(0)->WritePage(1, "s0p1").ok());
  ASSERT_TRUE(topo.shard(1)->WritePage(2, "s1p2").ok());
  std::vector<ReadCursor> cursors(2);
  std::vector<AsyncReadCompletion> completions;
  const std::vector<AsyncReadRequest> requests{
      {MakePageAddress(1, 2), 0}, {MakePageAddress(0, 1), 1}};
  ASSERT_TRUE(topo.SubmitBatch(requests, 4, &cursors, &completions).ok());
  ASSERT_EQ(completions.size(), 2u);
  // Completions carry routed addresses; each shard accounted one read.
  EXPECT_EQ(cursors[0].stats.total_reads(), 1u);
  EXPECT_EQ(cursors[1].stats.total_reads(), 1u);
  for (const AsyncReadCompletion& c : completions) {
    if (c.tag == 0) {
      EXPECT_EQ(c.page, MakePageAddress(1, 2));
      EXPECT_EQ(c.data.substr(0, 4), "s1p2");
    } else {
      EXPECT_EQ(c.page, MakePageAddress(0, 1));
      EXPECT_EQ(c.data.substr(0, 4), "s0p1");
    }
  }
  // Unknown shard / unallocated page fail before any accounting.
  cursors[0].Reset();
  cursors[1].Reset();
  completions.clear();
  EXPECT_TRUE(topo.SubmitBatch({{MakePageAddress(5, 0), 0}}, 1, &cursors,
                               &completions)
                  .IsOutOfRange());
  EXPECT_TRUE(topo.SubmitBatch({{MakePageAddress(1, 99), 0}}, 1, &cursors,
                               &completions)
                  .IsOutOfRange());
  EXPECT_EQ(cursors[0].stats.total_reads() + cursors[1].stats.total_reads(),
            0u);
}

TEST(FetchBatchTest, ReturnsPagesInRequestOrderWithDuplicates) {
  BlockDevice dev(16);
  dev.AllocatePages(4);
  for (PageId p = 0; p < 4; ++p) {
    ASSERT_TRUE(dev.WritePage(p, std::string(4, static_cast<char>('a' + p)))
                    .ok());
  }
  for (int depth : {1, 8}) {
    BufferPool pool(&dev, 4);
    pool.set_io_queue_depth(depth);
    auto refs = pool.FetchBatch({2, 0, 2, 3, 0});
    ASSERT_TRUE(refs.ok()) << "depth=" << depth;
    ASSERT_EQ(refs->size(), 5u);
    EXPECT_EQ((*refs)[0].view().substr(0, 4), "cccc");
    EXPECT_EQ((*refs)[1].view().substr(0, 4), "aaaa");
    EXPECT_EQ((*refs)[2].view().substr(0, 4), "cccc");
    EXPECT_EQ((*refs)[3].view().substr(0, 4), "dddd");
    EXPECT_EQ((*refs)[4].view().substr(0, 4), "aaaa");
    // Duplicates cost one device read plus pool hits, like a Fetch loop.
    EXPECT_EQ(pool.misses(), 3u) << "depth=" << depth;
    EXPECT_EQ(pool.hits(), 2u) << "depth=" << depth;
    EXPECT_EQ(pool.io_stats().total_reads(), 3u) << "depth=" << depth;
  }
}

TEST(FetchBatchTest, Depth1MatchesFetchLoopAccountingExactly) {
  BlockDevice dev(16);
  dev.AllocatePages(8);
  const std::vector<PageId> ids{6, 1, 2, 3, 6, 0};
  BufferPool loop_pool(&dev, 4);
  for (PageId id : ids) ASSERT_TRUE(loop_pool.Fetch(id).ok());
  BufferPool batch_pool(&dev, 4);
  ASSERT_TRUE(batch_pool.FetchBatch(ids).ok());
  EXPECT_EQ(batch_pool.hits(), loop_pool.hits());
  EXPECT_EQ(batch_pool.misses(), loop_pool.misses());
  EXPECT_EQ(batch_pool.io_stats().random_reads,
            loop_pool.io_stats().random_reads);
  EXPECT_EQ(batch_pool.io_stats().sequential_reads,
            loop_pool.io_stats().sequential_reads);
}

TEST(FetchBatchTest, CrossShardBatchOverlapsPerShardQueues) {
  StorageTopology topo(StorageTopologyOptions{2, 16});
  topo.shard(0)->AllocatePages(4);
  topo.shard(1)->AllocatePages(4);
  BufferPool pool(&topo, 16);
  pool.set_io_queue_depth(4);
  std::vector<PageId> ids;
  for (PageId p = 0; p < 4; ++p) {
    ids.push_back(MakePageAddress(0, p));
    ids.push_back(MakePageAddress(1, p));
  }
  auto refs = pool.FetchBatch(ids);
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ(pool.misses(), 8u);
  // Each shard serviced its own 4-page queue: with the whole sub-batch
  // in flight the mean occupancy exceeds 1 on both shards.
  for (int shard : {0, 1}) {
    EXPECT_EQ(pool.shard_io_stats(shard).batched_reads, 4u);
    EXPECT_GT(pool.shard_io_stats(shard).mean_inflight(), 1.0);
  }
  // Batch totals equal the per-shard sums (the accounting invariant the
  // engine's per-shard breakdown relies on).
  EXPECT_EQ(pool.io_stats().total_reads(), 8u);
  EXPECT_EQ(pool.io_stats().batched_reads, 8u);
}

TEST(FetchBatchTest, EvictionStaysDeterministicUnderReordering) {
  // Pages enter the LRU in request order whatever the service order, so
  // a tiny pool ends resident with the last-requested pages.
  BlockDevice dev(16);
  dev.AllocatePages(8);
  BufferPool pool(&dev, 2);
  pool.set_io_queue_depth(8);
  auto refs = pool.FetchBatch({7, 0, 3, 5});
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ(pool.resident(), 2u);
  const uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.Fetch(3).ok());  // Still resident.
  ASSERT_TRUE(pool.Fetch(5).ok());  // Still resident.
  EXPECT_EQ(pool.misses(), misses_before);
  ASSERT_TRUE(pool.Fetch(7).ok());  // Evicted -> miss.
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST(ReadExtentsBatchedTest, MatchesReadExtentAtAnyDepth) {
  Rng rng(47);
  StorageTopology topo(StorageTopologyOptions{3, 64});
  ShardedExtentWriter writer(&topo);
  std::vector<std::string> blobs;
  std::vector<Extent> extents;
  for (int i = 0; i < 60; ++i) {
    std::string blob;
    const size_t len = rng.Uniform(300);
    blob.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      blob.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto e = writer.Append(static_cast<uint32_t>(i % 3), blob);
    ASSERT_TRUE(e.ok());
    blobs.push_back(std::move(blob));
    extents.push_back(*e);
  }
  ASSERT_TRUE(writer.Flush().ok());
  for (int depth : {1, 2, 8}) {
    BufferPool pool(&topo, 32);
    pool.set_io_queue_depth(depth);
    auto result = ReadExtentsBatched(&pool, extents, 64);
    ASSERT_TRUE(result.ok()) << "depth=" << depth;
    ASSERT_EQ(result->size(), blobs.size());
    for (size_t i = 0; i < blobs.size(); ++i) {
      EXPECT_EQ((*result)[i], blobs[i]) << "depth=" << depth << " i=" << i;
    }
  }
}

TEST(StorageTopologyTest, MaxAddressableShardCountConstructs) {
  // Shard ids 0..kMaxShards-1 all fit in the address bits, so a topology
  // of exactly kMaxShards shards is valid.
  StorageTopology topo(
      StorageTopologyOptions{static_cast<int>(kMaxShards), 16});
  EXPECT_EQ(topo.num_shards(), static_cast<int>(kMaxShards));
  topo.shard(static_cast<int>(kMaxShards) - 1)->AllocatePage();
  BufferPool pool(&topo, 2);
  EXPECT_TRUE(pool.Fetch(MakePageAddress(kMaxShards - 1, 0)).ok());
}

// ----------------------------------------------- Async write batch path

TEST(SubmitWriteBatchTest, Depth1MatchesWritePageLoopExactly) {
  // write_queue_depth == 1 must degenerate to the synchronous path:
  // strict FIFO service, same random/sequential classification as the
  // equivalent WritePage loop, same page bytes.
  BlockDevice batched_dev(64);
  BlockDevice sync_dev(64);
  batched_dev.AllocatePages(10);
  sync_dev.AllocatePages(10);
  const std::vector<AsyncWriteRequest> requests{
      {5, "five"}, {3, "three"}, {4, "four"}};
  ASSERT_TRUE(batched_dev.SubmitWriteBatch(requests, 1).ok());
  for (const AsyncWriteRequest& r : requests) {
    ASSERT_TRUE(sync_dev.WritePage(r.page, r.data).ok());
  }
  EXPECT_EQ(batched_dev.stats().random_writes, sync_dev.stats().random_writes);
  EXPECT_EQ(batched_dev.stats().sequential_writes,
            sync_dev.stats().sequential_writes);
  EXPECT_EQ(batched_dev.stats().batched_writes, 3u);
  EXPECT_DOUBLE_EQ(batched_dev.stats().mean_write_inflight(), 1.0);
  ReadCursor a, b;
  for (PageId p = 0; p < 10; ++p) {
    EXPECT_EQ(*batched_dev.ReadPage(p, &a), *sync_dev.ReadPage(p, &b))
        << "page " << p;
  }
}

TEST(SubmitWriteBatchTest, DeepQueueReordersSeekAware) {
  // With the whole batch in flight the device services the shortest seek
  // first: writes [5, 3, 4] after a write to page 2 become 3, 4, 5 — all
  // sequential — and the occupancy counters see the full queue.
  BlockDevice dev(64);
  dev.AllocatePages(10);
  ASSERT_TRUE(dev.WritePage(2, "head").ok());
  dev.mutable_stats()->Reset();  // Keep the head position, drop counters.
  const std::vector<AsyncWriteRequest> requests{
      {5, "five"}, {3, "three"}, {4, "four"}};
  ASSERT_TRUE(dev.SubmitWriteBatch(requests, 3).ok());
  EXPECT_EQ(dev.stats().sequential_writes, 3u);
  EXPECT_EQ(dev.stats().random_writes, 0u);
  // Occupancy: 3 in flight, then 2, then 1.
  EXPECT_EQ(dev.stats().batched_writes, 3u);
  EXPECT_EQ(dev.stats().write_inflight_accum, 6u);
  EXPECT_DOUBLE_EQ(dev.stats().mean_write_inflight(), 2.0);
  ReadCursor cursor;
  EXPECT_EQ(dev.ReadPage(3, &cursor)->substr(0, 5), "three");
  EXPECT_EQ(dev.ReadPage(4, &cursor)->substr(0, 4), "four");
  EXPECT_EQ(dev.ReadPage(5, &cursor)->substr(0, 4), "five");
}

TEST(SubmitWriteBatchTest, ValidatesBeforeAccountingOrWriting) {
  BlockDevice dev(8);
  dev.AllocatePages(2);
  ASSERT_TRUE(dev.WritePage(0, "keep").ok());
  dev.mutable_stats()->Reset();
  // Unallocated target: nothing written, nothing accounted.
  EXPECT_TRUE(dev.SubmitWriteBatch({{0, "clobber"}, {99, "x"}}, 4)
                  .IsOutOfRange());
  EXPECT_EQ(dev.stats().total_writes(), 0u);
  // Oversized payload: same.
  EXPECT_FALSE(dev.SubmitWriteBatch({{0, "far too long for 8B"}}, 4).ok());
  EXPECT_EQ(dev.stats().total_writes(), 0u);
  ReadCursor cursor;
  EXPECT_EQ(dev.ReadPage(0, &cursor)->substr(0, 4), "keep");
}

TEST(TopologySubmitWriteBatchTest, RoutesPerShardWriteQueues) {
  StorageTopology topo(StorageTopologyOptions{2, 16});
  topo.shard(0)->AllocatePages(4);
  topo.shard(1)->AllocatePages(4);
  std::vector<AsyncWriteRequest> requests;
  requests.push_back({MakePageAddress(1, 2), "s1p2"});
  requests.push_back({MakePageAddress(0, 1), "s0p1"});
  requests.push_back({MakePageAddress(1, 3), "s1p3"});
  ASSERT_TRUE(topo.SubmitWriteBatch(std::move(requests), 4).ok());
  EXPECT_EQ(topo.shard(0)->stats().total_writes(), 1u);
  EXPECT_EQ(topo.shard(1)->stats().total_writes(), 2u);
  EXPECT_EQ(topo.shard(0)->stats().batched_writes, 1u);
  ReadCursor c0, c1;
  EXPECT_EQ(topo.shard(0)->ReadPage(1, &c0)->substr(0, 4), "s0p1");
  EXPECT_EQ(topo.shard(1)->ReadPage(2, &c1)->substr(0, 4), "s1p2");
  EXPECT_EQ(topo.shard(1)->ReadPage(3, &c1)->substr(0, 4), "s1p3");
  // A routed batch with a bad address writes nothing anywhere.
  std::vector<AsyncWriteRequest> bad;
  bad.push_back({MakePageAddress(0, 0), "ok"});
  bad.push_back({MakePageAddress(7, 0), "no such shard"});
  EXPECT_TRUE(topo.SubmitWriteBatch(std::move(bad), 2).IsOutOfRange());
  EXPECT_EQ(topo.shard(0)->stats().total_writes(), 1u);
}

TEST(ExtentWriterWriteBatchingTest, DeepQueueImageMatchesSynchronous) {
  // The same append sequence at write_queue_depth 1 and 8 must produce
  // bit-identical devices; only the accounting path differs (the deep
  // writer batches every page, the depth-1 writer batches none). Enough
  // blobs to overflow the writer's page buffer several times.
  BlockDevice sync_dev(64);
  BlockDevice deep_dev(64);
  ExtentWriter sync_writer(&sync_dev, 0, 1);
  ExtentWriter deep_writer(&deep_dev, 0, 8);
  Rng rng(4242);
  for (int i = 0; i < 400; ++i) {
    std::string blob;
    const size_t len = 1 + rng.Uniform(150);
    for (size_t j = 0; j < len; ++j) {
      blob.push_back(static_cast<char>('a' + (i + static_cast<int>(j)) % 26));
    }
    auto a = sync_writer.Append(blob);
    auto b = deep_writer.Append(blob);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->first_page, b->first_page);
    EXPECT_EQ(a->offset_in_page, b->offset_in_page);
    if (i % 37 == 0) {
      ASSERT_TRUE(sync_writer.AlignToPage().ok());
      ASSERT_TRUE(deep_writer.AlignToPage().ok());
    }
  }
  ASSERT_TRUE(sync_writer.Flush().ok());
  ASSERT_TRUE(deep_writer.Flush().ok());
  ASSERT_EQ(sync_dev.num_pages(), deep_dev.num_pages());
  ReadCursor a, b;
  for (PageId p = 0; p < sync_dev.num_pages(); ++p) {
    EXPECT_EQ(*sync_dev.ReadPage(p, &a), *deep_dev.ReadPage(p, &b))
        << "page " << p;
  }
  EXPECT_EQ(sync_dev.stats().batched_writes, 0u);
  EXPECT_EQ(deep_dev.stats().batched_writes, deep_dev.stats().total_writes());
  EXPECT_EQ(sync_dev.stats().total_writes(), deep_dev.stats().total_writes());
  EXPECT_GT(deep_dev.stats().mean_write_inflight(), 1.0);
}

// ------------------------------------------------------ BuildWorkerPool

TEST(BuildWorkerPoolTest, InlineModeRunsTasksAtSubmitInOrder) {
  BuildWorkerPool pool(4, 1);
  EXPECT_EQ(pool.num_workers(), 1);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    pool.Submit(static_cast<uint32_t>(i % 4), [&order, i]() {
      order.push_back(i);
      return Status::OK();
    });
    // Inline mode runs before Submit returns.
    EXPECT_EQ(order.size(), static_cast<size_t>(i + 1));
  }
  EXPECT_TRUE(pool.Finish().ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(BuildWorkerPoolTest, ThreadedModePreservesPerShardFifo) {
  constexpr int kShards = 4;
  constexpr int kTasksPerShard = 50;
  BuildWorkerPool pool(kShards, 0);  // One worker per shard.
  EXPECT_EQ(pool.num_workers(), kShards);
  std::vector<std::vector<int>> per_shard(kShards);
  for (int i = 0; i < kTasksPerShard; ++i) {
    for (int s = 0; s < kShards; ++s) {
      pool.Submit(static_cast<uint32_t>(s), [&per_shard, s, i]() {
        per_shard[static_cast<size_t>(s)].push_back(i);
        return Status::OK();
      });
    }
  }
  ASSERT_TRUE(pool.Barrier().ok());
  // Barrier drains; the pool stays usable for a second phase.
  for (int s = 0; s < kShards; ++s) {
    pool.Submit(static_cast<uint32_t>(s), [&per_shard, s, kTasksPerShard]() {
      per_shard[static_cast<size_t>(s)].push_back(kTasksPerShard);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.Finish().ok());
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(per_shard[s].size(), static_cast<size_t>(kTasksPerShard + 1));
    for (int i = 0; i <= kTasksPerShard; ++i) {
      EXPECT_EQ(per_shard[s][static_cast<size_t>(i)], i)
          << "shard " << s << " ran out of order";
    }
  }
}

TEST(BuildWorkerPoolTest, ErrorStopsInlinePoolAndIsReturned) {
  BuildWorkerPool pool(2, 1);
  int ran = 0;
  pool.Submit(0, [&ran]() {
    ++ran;
    return Status::OK();
  });
  pool.Submit(1, []() { return Status::Corruption("unit 1 broke"); });
  pool.Submit(0, [&ran]() {
    ++ran;
    return Status::OK();
  });
  Status status = pool.Finish();
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_EQ(ran, 1) << "tasks after a failure must be skipped";
}

TEST(BuildWorkerPoolTest, ThreadedErrorSurfacesThroughBarrier) {
  BuildWorkerPool pool(4, 4);
  for (int i = 0; i < 16; ++i) {
    pool.Submit(static_cast<uint32_t>(i % 4), [i]() {
      if (i == 5) return Status::Corruption("task 5 broke");
      return Status::OK();
    });
  }
  EXPECT_TRUE(pool.Finish().IsCorruption());
}

}  // namespace
}  // namespace streach
