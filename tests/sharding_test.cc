// Sharded-equivalence tests for the storage topology refactor.
//
// The contract of `StorageTopology`: sharding is an IO-accounting /
// placement concern only. For any shard count S, every disk-resident
// backend must return byte-identical answers to the unsharded (S=1)
// baseline over a randomized workload — sequentially and under a
// multi-threaded engine — and the engine's per-shard IoStats breakdown
// must sum to the workload totals.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/grail.h"
#include "baselines/spj.h"
#include "common/check.h"
#include "engine/backends.h"
#include "engine/query_engine.h"
#include "engine/reachability_index.h"
#include "generators/random_waypoint.h"
#include "generators/workload.h"
#include "join/contact_extractor.h"
#include "network/contact_network.h"
#include "reachgraph/dn_builder.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"
#include "test_util.h"

namespace streach {
namespace {

constexpr double kContactRange = 25.0;
constexpr int kShardedS = 4;

class ShardingTest : public ::testing::Test {
 protected:
  /// Every disk-resident structure built at one shard count.
  struct Stack {
    std::shared_ptr<const ReachGridIndex> grid;
    std::shared_ptr<const ReachGraphIndex> graph;
    std::shared_ptr<const GrailIndex> grail;
    std::shared_ptr<const SpjEvaluator> spj;
  };

  static void SetUpTestSuite() {
    RandomWaypointParams params;
    params.num_objects = 120;
    params.area = Rect(0, 0, 1200, 1200);
    params.duration = 400;
    params.seed = 20260728;  // Fixed for replay.
    auto store = GenerateRandomWaypoint(params);
    ASSERT_TRUE(store.ok());
    store_ = new TrajectoryStore(std::move(*store));
    network_ = new std::shared_ptr<const ContactNetwork>(
        std::make_shared<const ContactNetwork>(
            store_->num_objects(), store_->span(),
            ExtractContacts(*store_, kContactRange)));

    unsharded_ = new Stack(BuildStack(1));
    sharded_ = new Stack(BuildStack(kShardedS));
  }

  static void TearDownTestSuite() {
    delete sharded_;
    delete unsharded_;
    delete network_;
    delete store_;
    sharded_ = nullptr;
    unsharded_ = nullptr;
    network_ = nullptr;
    store_ = nullptr;
  }

  static Stack BuildStack(int num_shards,
                          PageCodecKind codec = PageCodecKind::kRaw) {
    Stack stack;
    BuildOptions build;
    build.page_codec = codec;

    ReachGridOptions grid_options;
    grid_options.temporal_resolution = 20;
    grid_options.spatial_cell_size = 150.0;
    grid_options.contact_range = kContactRange;
    grid_options.num_shards = num_shards;
    grid_options.build = build;
    auto grid = ReachGridIndex::Build(*store_, grid_options);
    STREACH_CHECK(grid.ok());
    stack.grid = std::move(*grid);

    ReachGraphOptions graph_options;
    graph_options.num_shards = num_shards;
    graph_options.build = build;
    auto graph = ReachGraphIndex::Build(**network_, graph_options);
    STREACH_CHECK(graph.ok());
    stack.graph = std::move(*graph);

    auto dn = BuildDnGraph(**network_);
    STREACH_CHECK(dn.ok());
    GrailOptions grail_options;
    grail_options.num_shards = num_shards;
    grail_options.build = build;
    auto grail = GrailIndex::Build(*dn, grail_options);
    STREACH_CHECK(grail.ok());
    stack.grail = std::move(*grail);

    SpjOptions spj_options;
    spj_options.contact_range = kContactRange;
    spj_options.num_shards = num_shards;
    spj_options.build = build;
    auto spj = SpjEvaluator::Build(*store_, spj_options);
    STREACH_CHECK(spj.ok());
    stack.spj = std::move(*spj);

    return stack;
  }

  /// One session per disk-resident backend family over `stack`.
  static std::vector<std::unique_ptr<ReachabilityIndex>> DiskBackends(
      const Stack& stack) {
    std::vector<std::unique_ptr<ReachabilityIndex>> backends;
    backends.push_back(MakeReachGridBackend(stack.grid));
    backends.push_back(
        MakeReachGraphBackend(stack.graph, ReachGraphTraversal::kBmBfs));
    backends.push_back(
        MakeReachGraphBackend(stack.graph, ReachGraphTraversal::kBBfs));
    backends.push_back(
        MakeReachGraphBackend(stack.graph, ReachGraphTraversal::kEBfs));
    backends.push_back(
        MakeReachGraphBackend(stack.graph, ReachGraphTraversal::kEDfs));
    backends.push_back(MakeSpjBackend(stack.spj));
    backends.push_back(MakeGrailBackend(stack.grail, GrailMode::kDisk));
    return backends;
  }

  static std::vector<ReachQuery> MakeQueries(int n, uint64_t seed) {
    WorkloadParams wl;
    wl.num_queries = n;
    wl.num_objects = store_->num_objects();
    wl.span = store_->span();
    wl.min_interval_len = 30;
    wl.max_interval_len = 180;
    wl.seed = seed;
    return GenerateWorkload(wl);
  }

  static TrajectoryStore* store_;
  static std::shared_ptr<const ContactNetwork>* network_;
  static Stack* unsharded_;
  static Stack* sharded_;
};

TrajectoryStore* ShardingTest::store_ = nullptr;
std::shared_ptr<const ContactNetwork>* ShardingTest::network_ = nullptr;
ShardingTest::Stack* ShardingTest::unsharded_ = nullptr;
ShardingTest::Stack* ShardingTest::sharded_ = nullptr;

TEST_F(ShardingTest, ShardCountsAreAsBuilt) {
  EXPECT_EQ(unsharded_->grid->num_shards(), 1);
  EXPECT_EQ(sharded_->grid->num_shards(), kShardedS);
  EXPECT_EQ(sharded_->graph->num_shards(), kShardedS);
  EXPECT_EQ(sharded_->grail->num_shards(), kShardedS);
  EXPECT_EQ(sharded_->spj->num_shards(), kShardedS);
  // The interface reports the topology width too.
  auto backends = DiskBackends(*sharded_);
  for (auto& backend : backends) {
    EXPECT_EQ(backend->num_shards(), kShardedS) << backend->DescribeIndex();
    EXPECT_EQ(backend->shard_io_stats().size(),
              static_cast<size_t>(kShardedS))
        << backend->DescribeIndex();
  }
}

TEST_F(ShardingTest, ShardedAnswersMatchUnshardedSequentially) {
  const std::vector<ReachQuery> queries = MakeQueries(240, 31);
  auto base = DiskBackends(*unsharded_);
  auto test = DiskBackends(*sharded_);
  ASSERT_EQ(base.size(), test.size());
  for (size_t b = 0; b < base.size(); ++b) {
    std::vector<ReachAnswer> expected, actual;
    expected.reserve(queries.size());
    actual.reserve(queries.size());
    for (const ReachQuery& q : queries) {
      auto e = base[b]->Query(q);
      auto a = test[b]->Query(q);
      ASSERT_TRUE(e.ok() && a.ok())
          << base[b]->DescribeIndex() << " on " << q.ToString();
      expected.push_back(*e);
      actual.push_back(*a);
    }
    EXPECT_EQ(SerializeAnswers(expected), SerializeAnswers(actual))
        << base[b]->DescribeIndex()
        << ": sharded answers differ from unsharded baseline";
  }
}

TEST_F(ShardingTest, ShardedAnswersMatchUnshardedUnder4EngineThreads) {
  const std::vector<ReachQuery> queries = MakeQueries(240, 32);
  QueryEngineOptions options;
  options.num_threads = 4;
  const QueryEngine engine(options);

  auto base = DiskBackends(*unsharded_);
  auto test = DiskBackends(*sharded_);
  for (size_t b = 0; b < base.size(); ++b) {
    auto expected = engine.Run(base[b].get(), queries);
    auto actual = engine.Run(test[b].get(), queries);
    ASSERT_TRUE(expected.ok() && actual.ok()) << base[b]->DescribeIndex();
    EXPECT_EQ(SerializeAnswers(expected->answers), SerializeAnswers(actual->answers))
        << base[b]->DescribeIndex();
  }
}

TEST_F(ShardingTest, PerShardIoSumsToWorkloadTotals) {
  const std::vector<ReachQuery> queries = MakeQueries(200, 33);
  for (int threads : {1, 4}) {
    QueryEngineOptions options;
    options.num_threads = threads;
    const QueryEngine engine(options);
    auto backends = DiskBackends(*sharded_);
    for (auto& backend : backends) {
      auto report = engine.Run(backend.get(), queries);
      ASSERT_TRUE(report.ok()) << backend->DescribeIndex();
      const WorkloadSummary& s = report->summary;
      ASSERT_EQ(s.per_shard_io.size(), static_cast<size_t>(kShardedS))
          << backend->DescribeIndex();
      IoStats total;
      int nonzero_shards = 0;
      for (const IoStats& shard : s.per_shard_io) {
        total += shard;
        if (shard.total_reads() > 0) ++nonzero_shards;
      }
      EXPECT_EQ(total.total_reads(), s.total_pages_fetched)
          << backend->DescribeIndex() << " threads=" << threads;
      EXPECT_NEAR(total.NormalizedReadCost(), s.total_io_cost, 1e-6)
          << backend->DescribeIndex() << " threads=" << threads;
      // A 4-shard topology actually spreads the workload's IO.
      EXPECT_GE(nonzero_shards, 2) << backend->DescribeIndex();
    }
  }
}

TEST_F(ShardingTest, UnshardedTopologyReportsOneShardMatchingTotals) {
  const std::vector<ReachQuery> queries = MakeQueries(100, 34);
  auto backend = MakeReachGridBackend(unsharded_->grid);
  auto report = QueryEngine(QueryEngineOptions{}).Run(backend.get(), queries);
  ASSERT_TRUE(report.ok());
  const WorkloadSummary& s = report->summary;
  ASSERT_EQ(s.per_shard_io.size(), 1u);
  EXPECT_EQ(s.per_shard_io[0].total_reads(), s.total_pages_fetched);
  EXPECT_NEAR(s.per_shard_io[0].NormalizedReadCost(), s.total_io_cost, 1e-6);
}

TEST_F(ShardingTest, ShardedDeltaVarintAnswersMatchUnshardedRaw) {
  // The sharded-equivalence contract composes with the page codec: a
  // 4-shard delta-varint stack (built lazily here — only this test pays
  // for it) answers byte-identically to the unsharded raw baseline,
  // sequentially and under a 4-thread engine.
  const Stack delta1 = BuildStack(1, PageCodecKind::kDeltaVarint);
  const Stack delta4 = BuildStack(kShardedS, PageCodecKind::kDeltaVarint);
  const std::vector<ReachQuery> queries = MakeQueries(160, 35);
  auto base = DiskBackends(*unsharded_);
  for (const Stack* delta : {&delta1, &delta4}) {
    auto test = DiskBackends(*delta);
    ASSERT_EQ(base.size(), test.size());
    for (size_t b = 0; b < base.size(); ++b) {
      std::vector<ReachAnswer> expected, actual;
      for (const ReachQuery& q : queries) {
        auto e = base[b]->Query(q);
        auto a = test[b]->Query(q);
        ASSERT_TRUE(e.ok() && a.ok())
            << base[b]->DescribeIndex() << " on " << q.ToString();
        expected.push_back(*e);
        actual.push_back(*a);
      }
      EXPECT_EQ(SerializeAnswers(expected), SerializeAnswers(actual))
          << base[b]->DescribeIndex()
          << ": delta-varint sharded answers differ from raw baseline";
    }
    QueryEngineOptions options;
    options.num_threads = 4;
    options.page_codec = PageCodecKind::kDeltaVarint;
    const QueryEngine engine(options);
    const QueryEngine raw_engine(QueryEngineOptions{});
    auto engine_test = DiskBackends(*delta);
    for (size_t b = 0; b < base.size(); ++b) {
      auto expected = raw_engine.Run(base[b].get(), queries);
      auto actual = engine.Run(engine_test[b].get(), queries);
      ASSERT_TRUE(expected.ok() && actual.ok()) << base[b]->DescribeIndex();
      EXPECT_EQ(SerializeAnswers(expected->answers),
                SerializeAnswers(actual->answers))
          << base[b]->DescribeIndex() << " (4-thread engine, delta-varint)";
    }
  }
}

}  // namespace
}  // namespace streach
