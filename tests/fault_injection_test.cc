// Fault-injection suite: the storage stack's integrity and retry layers
// under a deterministic seeded fault schedule.
//
// The contracts under test:
//  * transient (Unavailable) read faults are fully masked by any retry
//    budget >= the per-page failure count, and surfaced as per-query
//    statuses (never aborting the batch, never wrong answers) otherwise;
//  * permanent (IOError) faults are never masked by retries;
//  * corrupted media — whether the page-checksum sidecar is stale or
//    freshly recomputed over the damage — is always detected as
//    Corruption, under every codec including raw, and never produces a
//    silently wrong answer;
//  * a streaming segment that fails verification is quarantined: by
//    default every overlapping query keeps failing with Corruption;
//    under degraded serving queries skip it and flag the answer.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/encoding.h"
#include "engine/backends.h"
#include "engine/query_engine.h"
#include "engine/reachability_index.h"
#include "generators/random_waypoint.h"
#include "join/contact_extractor.h"
#include "network/contact_network.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"
#include "storage/block_device.h"
#include "storage/block_file.h"
#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "storage/fault_injector.h"
#include "storage/page_codec.h"
#include "storage/storage_topology.h"
#include "stream/segmented_index.h"
#include "stream/streaming_ingestor.h"
#include "stream/streaming_options.h"
#include "test_util.h"

namespace streach {
namespace {

constexpr double kContactRange = 25.0;

bool SameAnswer(const ReachAnswer& x, const ReachAnswer& y) {
  return x.reachable == y.reachable && x.arrival_time == y.arrival_time;
}

// ------------------------------------------------------------ injector

TEST(FaultInjector, ClassificationIsDeterministicAndSeedSensitive) {
  FaultInjectorOptions options;
  options.seed = 42;
  options.transient_rate = 0.3;
  options.permanent_rate = 0.1;
  options.bitflip_rate = 0.2;
  const FaultInjector a(options);
  const FaultInjector b(options);
  options.seed = 43;
  const FaultInjector c(options);

  int transients = 0, permanents = 0, flips = 0, seed_diffs = 0;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    for (uint64_t page = 0; page < 500; ++page) {
      EXPECT_EQ(a.IsTransient(shard, page), b.IsTransient(shard, page));
      EXPECT_EQ(a.IsPermanent(shard, page), b.IsPermanent(shard, page));
      EXPECT_EQ(a.IsBitFlip(shard, page), b.IsBitFlip(shard, page));
      transients += a.IsTransient(shard, page);
      permanents += a.IsPermanent(shard, page);
      flips += a.IsBitFlip(shard, page);
      seed_diffs += a.IsTransient(shard, page) != c.IsTransient(shard, page);
    }
  }
  // Rates are honored roughly (2000 draws each) and the seed matters.
  EXPECT_NEAR(transients / 2000.0, 0.3, 0.05);
  EXPECT_NEAR(permanents / 2000.0, 0.1, 0.05);
  EXPECT_NEAR(flips / 2000.0, 0.2, 0.05);
  EXPECT_GT(seed_diffs, 0);
}

TEST(FaultInjector, TransientPagesHealAfterBudgetAndResetRearms) {
  FaultInjectorOptions options;
  options.seed = 7;
  options.transient_rate = 0.5;
  options.transient_failures = 2;
  const FaultInjector injector(options);

  uint64_t afflicted = kInvalidPage;
  for (uint64_t page = 0; page < 64; ++page) {
    if (injector.IsTransient(0, page) && !injector.IsPermanent(0, page)) {
      afflicted = page;
      break;
    }
  }
  ASSERT_NE(afflicted, kInvalidPage);

  // First two attempts fail Unavailable (with page context), then heal.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Status status = injector.OnRead(0, afflicted);
    EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
    EXPECT_NE(status.message().find("page " + std::to_string(afflicted)),
              std::string::npos)
        << status.ToString();
  }
  EXPECT_TRUE(injector.OnRead(0, afflicted).ok());
  EXPECT_EQ(injector.transient_injected(), 2u);

  injector.ResetAttempts();
  EXPECT_TRUE(injector.OnRead(0, afflicted).IsUnavailable());
}

// ------------------------------------------------- device & pool layer

TEST(FaultInjection, BufferPoolRetriesMaskTransientsAndAccountThem) {
  BlockDevice dev(64);
  dev.AllocatePages(16);
  for (PageId p = 0; p < 16; ++p) {
    ASSERT_TRUE(dev.WritePage(p, std::string(8, static_cast<char>(p))).ok());
  }
  FaultInjectorOptions options;
  options.seed = 11;
  options.transient_rate = 0.5;
  options.transient_failures = 2;
  const FaultInjector injector(options);
  dev.set_fault_injector(&injector, /*shard_label=*/0);

  // Budget below the failure count: afflicted pages surface Unavailable.
  {
    BufferPool pool(&dev, 16);
    pool.set_max_read_retries(1);
    bool saw_unavailable = false;
    for (PageId p = 0; p < 16; ++p) {
      const auto page = pool.Fetch(p);
      if (!page.ok()) {
        EXPECT_TRUE(page.status().IsUnavailable()) << page.status().ToString();
        saw_unavailable = true;
      }
    }
    EXPECT_TRUE(saw_unavailable);
  }

  // Budget >= failure count: every read succeeds; the stats expose both
  // the faults observed and the reissues that masked them. (The pool
  // above already burned one failed attempt per afflicted page, so
  // re-arm the schedule for a clean count.)
  injector.ResetAttempts();
  BufferPool pool(&dev, 16);
  pool.set_max_read_retries(3);
  for (PageId p = 0; p < 16; ++p) {
    const auto page = pool.Fetch(p);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ((*page)[0], static_cast<char>(p));
  }
  EXPECT_GT(pool.io_stats().transient_faults, 0u);
  // Fully masked run: every observed fault was answered by a reissue.
  EXPECT_EQ(pool.io_stats().read_retries, pool.io_stats().transient_faults);

  dev.set_fault_injector(nullptr, 0);
}

TEST(FaultInjection, PermanentFaultsAreNeverMaskedByRetries) {
  BlockDevice dev(64);
  dev.AllocatePages(8);
  FaultInjectorOptions options;
  options.seed = 3;
  options.permanent_rate = 1.0;  // Every page is dead media.
  const FaultInjector injector(options);
  dev.set_fault_injector(&injector, 2);

  BufferPool pool(&dev, 8);
  pool.set_max_read_retries(10);
  const auto page = pool.Fetch(5);
  ASSERT_FALSE(page.ok());
  EXPECT_TRUE(page.status().IsIOError()) << page.status().ToString();
  // The error names the page and the shard label it was attached with.
  EXPECT_NE(page.status().message().find("page 5"), std::string::npos);
  EXPECT_NE(page.status().message().find("shard 2"), std::string::npos);
  // No retry was spent on a non-transient failure.
  EXPECT_EQ(pool.io_stats().read_retries, 0u);
}

TEST(FaultInjection, CorruptionDetectedUnderBothChecksumLayersAndCodecs) {
  for (const PageCodecKind kind :
       {PageCodecKind::kRaw, PageCodecKind::kDeltaVarint}) {
    for (const bool refresh : {false, true}) {
      StorageTopologyOptions topology_options;
      topology_options.num_shards = 1;
      topology_options.page_size = 128;
      StorageTopology topology(topology_options);
      ExtentWriter writer(topology.shard(0), 0, 1, GetPageCodec(kind));
      Encoder enc;
      RecordShape shape;
      enc.PutVarint(200);
      shape.Bytes(enc.size());
      uint32_t v = 0;
      for (int i = 0; i < 200; ++i) {
        v += 5;
        enc.PutU32(v);
      }
      shape.U32Delta(200);
      const auto extent = writer.Append(enc.buffer(), shape);
      ASSERT_TRUE(extent.ok());
      ASSERT_TRUE(writer.Flush().ok());

      // Pre-damage sanity: the stored blob reads back exactly.
      {
        BufferPool pool(&topology, 64);
        pool.set_page_codec(GetPageCodec(kind));
        const auto record = ReadExtent(&pool, *extent, 128);
        ASSERT_TRUE(record.ok()) << record.status().ToString();
        EXPECT_EQ(*record, enc.buffer());
      }

      FaultInjectorOptions options;
      options.seed = 99;
      options.bitflip_rate = 1.0;  // Damage every stored page.
      const FaultInjector injector(options);
      ASSERT_TRUE(CorruptMedia(topology, injector, refresh).ok());

      // With a stale sidecar the page-level verify trips; with refreshed
      // sidecars only the blob footer can catch it. Either way: a
      // Corruption with locating context, never garbage bytes.
      BufferPool pool(&topology, 64);
      pool.set_page_codec(GetPageCodec(kind));
      const auto record = ReadExtent(&pool, *extent, 128);
      ASSERT_FALSE(record.ok())
          << "codec=" << static_cast<int>(kind) << " refresh=" << refresh;
      EXPECT_TRUE(record.status().IsCorruption())
          << record.status().ToString();
      EXPECT_NE(record.status().message().find(
                    refresh ? "blob checksum mismatch"
                            : "page checksum mismatch"),
                std::string::npos)
          << record.status().ToString();
    }
  }
}

// ------------------------------------------------- backend fault matrix

struct Matrix {
  std::shared_ptr<const TrajectoryStore> store;
  std::shared_ptr<const ContactNetwork> network;
  std::vector<ReachQuery> queries;
};

Matrix MakeMatrixInputs() {
  Matrix m;
  RandomWaypointParams params;
  params.num_objects = 60;
  params.area = Rect(0, 0, 800, 800);
  params.duration = 200;
  params.seed = 20260808;
  auto store = GenerateRandomWaypoint(params);
  STREACH_CHECK(store.ok());
  m.store = std::make_shared<const TrajectoryStore>(std::move(*store));
  m.network = std::make_shared<const ContactNetwork>(
      m.store->num_objects(), m.store->span(),
      ExtractContacts(*m.store, kContactRange));
  std::mt19937 rng(5);
  std::uniform_int_distribution<ObjectId> object(
      0, static_cast<ObjectId>(m.store->num_objects() - 1));
  std::uniform_int_distribution<Timestamp> tick(m.store->span().start,
                                                m.store->span().end);
  for (int i = 0; i < 40; ++i) {
    ReachQuery q;
    q.source = object(rng);
    q.destination = object(rng);
    const Timestamp a = tick(rng);
    const Timestamp b = tick(rng);
    q.interval = TimeInterval(std::min(a, b), std::max(a, b));
    m.queries.push_back(q);
  }
  return m;
}

/// One disk-resident backend variant of the lattice: a factory for fresh
/// sessions plus the topologies faults attach to.
struct BackendVariant {
  std::string label;
  std::function<std::unique_ptr<ReachabilityIndex>()> session;
  std::vector<const StorageTopology*> topologies;
  // Keeps the underlying indexes/ingestors alive.
  std::vector<std::shared_ptr<const void>> pins;
};

std::vector<BackendVariant> BuildVariants(const Matrix& m, int num_shards,
                                          PageCodecKind codec) {
  std::vector<BackendVariant> variants;
  BuildOptions build;
  build.page_codec = codec;

  ReachGridOptions grid_options;
  grid_options.temporal_resolution = 20;
  grid_options.spatial_cell_size = 120.0;
  grid_options.contact_range = kContactRange;
  grid_options.num_shards = num_shards;
  grid_options.build = build;
  auto grid = ReachGridIndex::Build(*m.store, grid_options);
  STREACH_CHECK(grid.ok());
  std::shared_ptr<const ReachGridIndex> grid_sp = std::move(*grid);
  variants.push_back({"grid",
                      [grid_sp] { return MakeReachGridBackend(grid_sp); },
                      {&grid_sp->topology()},
                      {grid_sp}});

  ReachGraphOptions graph_options;
  graph_options.num_shards = num_shards;
  graph_options.build = build;
  auto graph = ReachGraphIndex::Build(*m.network, graph_options);
  STREACH_CHECK(graph.ok());
  std::shared_ptr<const ReachGraphIndex> graph_sp = std::move(*graph);
  variants.push_back(
      {"graph",
       [graph_sp] {
         return MakeReachGraphBackend(graph_sp, ReachGraphTraversal::kBmBfs);
       },
       {&graph_sp->topology()},
       {graph_sp}});

  StreamingOptions stream_options;
  stream_options.num_objects = m.store->num_objects();
  stream_options.span = m.store->span();
  stream_options.seal_interval_ticks = 50;
  stream_options.num_shards = num_shards;
  stream_options.block_contacts = 16;
  // Small pages: each segment spans enough pages that the fault
  // lottery reliably afflicts some at every tested rate.
  stream_options.page_size = 128;
  stream_options.build = build;
  auto ingestor = StreamingIngestor::Create(stream_options);
  STREACH_CHECK(ingestor.ok());
  std::vector<Contact> contacts = m.network->contacts();
  std::sort(contacts.begin(), contacts.end(),
            [](const Contact& x, const Contact& y) {
              return std::tie(x.validity.end, x.validity.start, x.a, x.b) <
                     std::tie(y.validity.end, y.validity.start, y.a, y.b);
            });
  for (const Contact& c : contacts) {
    STREACH_CHECK((*ingestor)->Append(c).ok());
  }
  STREACH_CHECK((*ingestor)->SealRemaining().ok());
  std::shared_ptr<const StreamingIngestor> ingestor_sp = *ingestor;
  BackendVariant streaming;
  streaming.label = "streaming";
  streaming.session = [ingestor_sp] {
    return MakeStreamingBackend(ingestor_sp);
  };
  for (const auto& segment :
       ingestor_sp->SnapshotFor(m.store->span()).segments) {
    streaming.topologies.push_back(&segment->topology());
    streaming.pins.push_back(segment);
  }
  streaming.pins.push_back(ingestor_sp);
  STREACH_CHECK(!streaming.topologies.empty());
  variants.push_back(std::move(streaming));
  return variants;
}

TEST(FaultMatrix, TransientFaultsMaskedWithinBudgetSurfacedBeyondIt) {
  const Matrix m = MakeMatrixInputs();
  for (const int num_shards : {1, 4}) {
    for (const PageCodecKind codec :
         {PageCodecKind::kRaw, PageCodecKind::kDeltaVarint}) {
      for (BackendVariant& variant : BuildVariants(m, num_shards, codec)) {
        const std::string label = variant.label + " shards=" +
                                  std::to_string(num_shards) + " codec=" +
                                  std::to_string(static_cast<int>(codec));
        QueryEngineOptions engine_options;
        engine_options.page_codec = codec;

        // Fault-free baseline.
        auto baseline_session = variant.session();
        const auto baseline = QueryEngine(engine_options)
                                  .Run(baseline_session.get(), m.queries);
        ASSERT_TRUE(baseline.ok()) << label << ": "
                                   << baseline.status().ToString();
        const std::string baseline_bytes =
            SerializeAnswers(baseline->answers);

        FaultInjectorOptions fault_options;
        fault_options.seed = 1234;
        fault_options.transient_rate = 0.5;
        fault_options.transient_failures = 2;
        const FaultInjector injector(fault_options);
        for (const StorageTopology* topology : variant.topologies) {
          topology->AttachFaultInjector(&injector);
        }

        for (const int retries : {0, 3}) {
          injector.ResetAttempts();
          QueryEngineOptions faulted_options = engine_options;
          faulted_options.max_read_retries = retries;
          auto session = variant.session();
          const auto report =
              QueryEngine(faulted_options).Run(session.get(), m.queries);
          ASSERT_TRUE(report.ok())
              << label << " retries=" << retries << ": "
              << report.status().ToString();
          ASSERT_EQ(report->statuses.size(), m.queries.size());
          uint64_t failed = 0;
          for (size_t i = 0; i < m.queries.size(); ++i) {
            if (report->statuses[i].ok()) {
              // Never a silent wrong answer: a query that succeeded
              // under faults answers exactly like the fault-free run.
              EXPECT_TRUE(SameAnswer(report->answers[i], baseline->answers[i]))
                  << label << " retries=" << retries << " query " << i;
            } else {
              EXPECT_TRUE(report->statuses[i].IsUnavailable())
                  << report->statuses[i].ToString();
              ++failed;
            }
          }
          EXPECT_EQ(report->summary.failed_queries, failed);
          if (retries >= fault_options.transient_failures) {
            // Budget covers the schedule: everything masked.
            EXPECT_EQ(failed, 0u) << label;
            EXPECT_EQ(SerializeAnswers(report->answers), baseline_bytes)
                << label;
          }
        }
        EXPECT_GT(injector.transient_injected(), 0u) << label;

        for (const StorageTopology* topology : variant.topologies) {
          topology->AttachFaultInjector(nullptr);
        }
      }
    }
  }
}

TEST(FaultMatrix, PermanentFaultsSurfaceAsIOErrorsDespiteRetries) {
  const Matrix m = MakeMatrixInputs();
  for (BackendVariant& variant :
       BuildVariants(m, /*num_shards=*/4, PageCodecKind::kRaw)) {
    auto baseline_session = variant.session();
    const auto baseline =
        QueryEngine().Run(baseline_session.get(), m.queries);
    ASSERT_TRUE(baseline.ok());

    FaultInjectorOptions fault_options;
    fault_options.seed = 77;
    fault_options.permanent_rate = 0.05;
    const FaultInjector injector(fault_options);
    for (const StorageTopology* topology : variant.topologies) {
      topology->AttachFaultInjector(&injector);
    }

    QueryEngineOptions engine_options;
    engine_options.max_read_retries = 8;  // Budget must not help.
    auto session = variant.session();
    const auto report =
        QueryEngine(engine_options).Run(session.get(), m.queries);
    ASSERT_TRUE(report.ok()) << variant.label;
    for (size_t i = 0; i < m.queries.size(); ++i) {
      if (report->statuses[i].ok()) {
        EXPECT_TRUE(SameAnswer(report->answers[i], baseline->answers[i]))
            << variant.label << " query " << i;
      } else {
        EXPECT_TRUE(report->statuses[i].IsIOError())
            << report->statuses[i].ToString();
      }
    }

    for (const StorageTopology* topology : variant.topologies) {
      topology->AttachFaultInjector(nullptr);
    }
  }
}

// --------------------------------------------- quarantine & degradation

TEST(Quarantine, CorruptSegmentFailsClosedByDefaultAndSticks) {
  const Matrix m = MakeMatrixInputs();
  auto variants = BuildVariants(m, /*num_shards=*/1, PageCodecKind::kRaw);
  BackendVariant& streaming = variants.back();
  ASSERT_EQ(streaming.label, "streaming");
  ASSERT_GE(streaming.topologies.size(), 2u);

  // Damage every page of the FIRST sealed segment only, with refreshed
  // sidecars — so only the blob footers can convict it.
  FaultInjectorOptions fault_options;
  fault_options.seed = 5;
  fault_options.bitflip_rate = 1.0;
  const FaultInjector injector(fault_options);
  ASSERT_TRUE(CorruptMedia(*streaming.topologies[0], injector, true).ok());

  auto session = streaming.session();
  // A query over the whole span must touch the damaged segment: fails
  // with Corruption, and keeps failing (now from the quarantine list,
  // without re-reading the media).
  const auto first = session->ReachableSet(0, m.store->span());
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsCorruption()) << first.status().ToString();
  const auto second = session->ReachableSet(0, m.store->span());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsCorruption());
  EXPECT_NE(second.status().message().find("quarantined"),
            std::string::npos)
      << second.status().ToString();
  // The quarantine registry is shared across sessions of this backend.
  auto sibling = session->NewSession();
  const auto through_sibling = sibling->ReachableSet(0, m.store->span());
  ASSERT_FALSE(through_sibling.ok());
  EXPECT_NE(through_sibling.status().message().find("quarantined"),
            std::string::npos);
}

TEST(Quarantine, DegradedServingSkipsQuarantinedSegmentsAndFlags) {
  const Matrix m = MakeMatrixInputs();
  auto variants = BuildVariants(m, /*num_shards=*/1, PageCodecKind::kRaw);
  BackendVariant& streaming = variants.back();
  ASSERT_EQ(streaming.label, "streaming");
  ASSERT_GE(streaming.topologies.size(), 2u);

  FaultInjectorOptions fault_options;
  fault_options.seed = 5;
  fault_options.bitflip_rate = 1.0;
  const FaultInjector injector(fault_options);
  ASSERT_TRUE(CorruptMedia(*streaming.topologies[0], injector, true).ok());

  QueryEngineOptions engine_options;
  engine_options.degraded_serving = true;
  auto session = streaming.session();
  const auto report =
      QueryEngine(engine_options).Run(session.get(), m.queries);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Every query completes; the ones that needed the dead segment carry
  // the degraded flag instead of an error.
  EXPECT_EQ(report->summary.failed_queries, 0u);
  EXPECT_GT(report->summary.degraded_queries, 0u);
  uint64_t degraded = 0;
  for (size_t i = 0; i < m.queries.size(); ++i) {
    EXPECT_TRUE(report->statuses[i].ok())
        << report->statuses[i].ToString();
    degraded += report->per_query[i].degraded;
  }
  EXPECT_EQ(degraded, report->summary.degraded_queries);
  // Degraded output is still well-formed (correct over readable data).
  for (const ReachAnswer& answer : report->answers) {
    if (!answer.reachable) EXPECT_EQ(answer.arrival_time, kInvalidTime);
  }
}

}  // namespace
}  // namespace streach
