// PageCodec contract tests: Decode must invert Encode for every input
// (round-trip fuzz over random shapes, sorted runs, adversarial gaps and
// special doubles), the raw codec must be the identity, delta-varint
// must actually compress the run structures the index families declare,
// and corrupt stored bytes must be rejected with Status::Corruption —
// never a crash, hang, or fabricated record.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "common/rng.h"
#include "storage/block_device.h"
#include "storage/block_file.h"
#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "storage/page_codec.h"

namespace streach {
namespace {

std::string RoundTrip(const PageCodec* codec, const std::string& raw,
                      const RecordShape& shape) {
  auto stored = codec->Encode(raw, shape);
  EXPECT_TRUE(stored.ok()) << stored.status().ToString();
  auto back = codec->Decode(*stored);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, raw);
  return *stored;
}

void AppendU32s(Encoder* enc, const std::vector<uint32_t>& values) {
  for (uint32_t v : values) enc->PutU32(v);
}

TEST(PageCodecTest, NamesParseAndPrint) {
  EXPECT_STREQ(ToString(PageCodecKind::kRaw), "raw");
  EXPECT_STREQ(ToString(PageCodecKind::kDeltaVarint), "delta-varint");
  auto raw = ParsePageCodecKind("raw");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, PageCodecKind::kRaw);
  auto delta = ParsePageCodecKind("delta-varint");
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*delta, PageCodecKind::kDeltaVarint);
  EXPECT_TRUE(ParsePageCodecKind("gzip").status().IsInvalidArgument());
}

TEST(PageCodecTest, RawCodecIsTheIdentity) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kRaw);
  ASSERT_EQ(codec->kind(), PageCodecKind::kRaw);
  const std::string raw = "arbitrary bytes \x00\x01\xFF with anything";
  RecordShape shape;
  shape.Bytes(raw.size());
  auto stored = codec->Encode(raw, shape);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, raw);  // Bit-identical on disk.
  auto back = codec->Decode(raw);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(PageCodecTest, ShapeMismatchIsRejectedByBothCodecs) {
  RecordShape shape;
  shape.U32Delta(3);  // Covers 12 bytes.
  const std::string raw(8, 'x');
  for (auto kind : {PageCodecKind::kRaw, PageCodecKind::kDeltaVarint}) {
    EXPECT_TRUE(GetPageCodec(kind)
                    ->Encode(raw, shape)
                    .status()
                    .IsInvalidArgument())
        << ToString(kind);
  }
}

TEST(PageCodecTest, EmptyAndSingleElementRecords) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  RoundTrip(codec, "", RecordShape{});
  {
    Encoder enc;
    enc.PutU32(0xDEADBEEF);
    RecordShape shape;
    shape.U32Delta(1);
    RoundTrip(codec, enc.buffer(), shape);
  }
  {
    Encoder enc;
    enc.PutU64(std::numeric_limits<uint64_t>::max());
    RecordShape shape;
    shape.U64Delta(1);
    RoundTrip(codec, enc.buffer(), shape);
  }
  {
    Encoder enc;
    enc.PutDouble(std::numeric_limits<double>::quiet_NaN());
    RecordShape shape;
    shape.DoubleDelta(1);
    RoundTrip(codec, enc.buffer(), shape);
  }
}

TEST(PageCodecTest, SortedRunsCompressWell) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  Encoder enc;
  Rng rng(7);
  std::vector<uint32_t> sorted;
  uint32_t v = 0;
  for (int i = 0; i < 1000; ++i) {
    v += static_cast<uint32_t>(rng.Uniform(50));
    sorted.push_back(v);
  }
  AppendU32s(&enc, sorted);
  RecordShape shape;
  shape.U32Delta(sorted.size());
  const std::string stored = RoundTrip(codec, enc.buffer(), shape);
  // 4000 raw bytes of small sorted gaps must shrink by well over 2x.
  EXPECT_LT(stored.size(), enc.size() / 2)
      << stored.size() << " vs " << enc.size();
}

TEST(PageCodecTest, PiecewiseLinearDoublesCompress) {
  // A resting-then-moving trajectory like the RWP generator emits:
  // the linear predictor should collapse the constant-velocity stretches.
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  Encoder enc;
  double x = 1041.5, y = 220.25;
  for (int i = 0; i < 200; ++i) {
    enc.PutDouble(x);
    enc.PutDouble(y);
    if (i >= 50) {  // Rest for 50 ticks, then move linearly.
      x += 3.25;
      y -= 1.75;
    }
  }
  RecordShape shape;
  shape.DoubleDelta(400, /*stride=*/2);
  const std::string stored = RoundTrip(codec, enc.buffer(), shape);
  EXPECT_LT(stored.size(), enc.size() / 2)
      << stored.size() << " vs " << enc.size();
}

TEST(PageCodecTest, AdversarialGapsRoundTrip) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  // Extremes and alternating signs: max u32 gaps, wrap-around deltas.
  Encoder enc;
  const std::vector<uint32_t> values = {
      0, std::numeric_limits<uint32_t>::max(), 0, 1,
      std::numeric_limits<uint32_t>::max() - 1, 2, 0x80000000u, 0x7FFFFFFFu};
  AppendU32s(&enc, values);
  RecordShape shape;
  shape.U32Delta(values.size());
  RoundTrip(codec, enc.buffer(), shape);

  Encoder enc64;
  for (uint64_t v : {uint64_t{0}, std::numeric_limits<uint64_t>::max(),
                     uint64_t{1}, uint64_t{0x8000000000000000ull}}) {
    enc64.PutU64(v);
  }
  RecordShape shape64;
  shape64.U64Delta(4);
  RoundTrip(codec, enc64.buffer(), shape64);

  Encoder encd;
  for (double v : {0.0, -0.0, std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::quiet_NaN(),
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::max(), -1e308, 1e-308}) {
    encd.PutDouble(v);
  }
  RecordShape shaped;
  shaped.DoubleDelta(9, /*stride=*/1);
  RoundTrip(codec, encd.buffer(), shaped);
}

TEST(PageCodecTest, StrideLargerThanRunRoundTrips) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  Encoder enc;
  enc.PutU32(123);
  enc.PutU32(456);
  RecordShape shape;
  shape.U32Delta(2, /*stride=*/7);  // Every element deltas against zero.
  RoundTrip(codec, enc.buffer(), shape);
}

TEST(PageCodecTest, RoundTripFuzzOverRandomShapes) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  Rng rng(20260728);
  for (int round = 0; round < 300; ++round) {
    Encoder enc;
    RecordShape shape;
    const int num_runs = 1 + static_cast<int>(rng.Uniform(6));
    for (int r = 0; r < num_runs; ++r) {
      const uint64_t kind = rng.Uniform(4);
      const uint64_t count = rng.Uniform(40);
      const uint32_t stride = 1 + static_cast<uint32_t>(rng.Uniform(4));
      switch (kind) {
        case 0: {
          for (uint64_t i = 0; i < count; ++i) {
            enc.PutU8(static_cast<uint8_t>(rng.Uniform(256)));
          }
          shape.Bytes(count);
          break;
        }
        case 1: {
          uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 20));
          for (uint64_t i = 0; i < count; ++i) {
            // Mix of sorted-ish and wild values.
            v = rng.Uniform(10) == 0
                    ? static_cast<uint32_t>(rng.Uniform(
                          std::numeric_limits<uint32_t>::max()))
                    : v + static_cast<uint32_t>(rng.Uniform(100));
            enc.PutU32(v);
          }
          shape.U32Delta(count, stride);
          break;
        }
        case 2: {
          for (uint64_t i = 0; i < count; ++i) {
            enc.PutU64(rng.Uniform(std::numeric_limits<uint64_t>::max()));
          }
          shape.U64Delta(count, stride);
          break;
        }
        default: {
          double v = static_cast<double>(rng.Uniform(1u << 16));
          for (uint64_t i = 0; i < count; ++i) {
            v += static_cast<double>(rng.Uniform(1000)) / 16.0 - 30.0;
            enc.PutDouble(v);
          }
          shape.DoubleDelta(count, stride);
          break;
        }
      }
    }
    RoundTrip(codec, enc.buffer(), shape);
  }
}

TEST(PageCodecTest, TruncationsOfValidRecordsAreRejected) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  Encoder enc;
  enc.PutVarint(3);
  for (uint32_t v : {10u, 20u, 35u}) enc.PutU32(v);
  for (double v : {1.5, 2.5, 3.5}) enc.PutDouble(v);
  RecordShape shape;
  shape.Bytes(1);
  shape.U32Delta(3);
  shape.DoubleDelta(3);
  auto stored = codec->Encode(enc.buffer(), shape);
  ASSERT_TRUE(stored.ok());
  // Every strict prefix must fail cleanly — decoded output must never be
  // silently short.
  for (size_t cut = 0; cut < stored->size(); ++cut) {
    auto result = codec->Decode(stored->substr(0, cut));
    EXPECT_TRUE(result.status().IsCorruption())
        << "prefix of " << cut << " bytes decoded to something";
  }
  // Trailing garbage must fail too.
  EXPECT_TRUE(codec->Decode(*stored + "x").status().IsCorruption());
}

TEST(PageCodecTest, RandomGarbageNeverCrashesTheDecoder) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  Rng rng(424242);
  int ok_count = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string garbage;
    const size_t len = rng.Uniform(200);
    garbage.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto result = codec->Decode(garbage);
    if (result.ok()) ++ok_count;  // Accidentally well-formed is fine.
  }
  SUCCEED() << ok_count << " of 2000 random buffers parsed";
}

TEST(PageCodecTest, MalformedDescriptorsAreRejected) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaVarint);
  {
    std::string bogus;
    bogus.push_back(1);  // One run...
    bogus.push_back(9);  // ...of unknown kind 9.
    bogus.push_back(1);
    EXPECT_TRUE(codec->Decode(bogus).status().IsCorruption());
  }
  {
    std::string bogus;
    bogus.push_back(1);
    bogus.push_back(1);     // kU32Delta
    bogus.push_back(0x7F);  // count = 127 > stored size: implausible.
    bogus.push_back(1);     // stride
    EXPECT_TRUE(codec->Decode(bogus).status().IsCorruption());
  }
  {
    std::string bogus;
    bogus.push_back(1);
    bogus.push_back(1);  // kU32Delta
    bogus.push_back(1);  // count = 1
    bogus.push_back(0);  // stride = 0: invalid.
    bogus.push_back(0);
    EXPECT_TRUE(codec->Decode(bogus).status().IsCorruption());
  }
  {
    std::string bogus;
    bogus.push_back(0x7F);  // Claims 127 runs in a 1-byte record.
    EXPECT_TRUE(codec->Decode(bogus).status().IsCorruption());
  }
  {
    // Cumulative-allocation attack: every run's count individually fits
    // the stored size, but the sum implies gigabytes of raw output. The
    // decoder must reject on the cumulative bound before reserving
    // anything, not crash in bad_alloc.
    std::string bogus;
    bogus.push_back(60);  // 60 runs...
    for (int r = 0; r < 60; ++r) {
      bogus.push_back(2);     // kU64Delta
      bogus.push_back(100);   // count = 100 (< stored size ~184)
      bogus.push_back(1);     // stride
    }
    EXPECT_TRUE(codec->Decode(bogus).status().IsCorruption());
  }
}

TEST(PageCodecTest, WriterEncodesAndReadExtentDecodes) {
  // End-to-end through the storage stack: an ExtentWriter with the
  // delta-varint codec stores fewer bytes than the raw record, and
  // ReadExtent hands back the exact raw bytes while the decoded-record
  // cache turns repeat reads into zero-IO hits.
  BlockDevice device(256);
  ExtentWriter writer(&device, /*shard_id=*/0, /*write_queue_depth=*/1,
                      GetPageCodec(PageCodecKind::kDeltaVarint));
  Encoder enc;
  RecordShape shape;
  enc.PutVarint(500);
  shape.Bytes(enc.size());
  uint32_t v = 0;
  for (int i = 0; i < 500; ++i) {
    v += 3;
    enc.PutU32(v);
  }
  shape.U32Delta(500);
  auto extent = writer.Append(enc.buffer(), shape);
  ASSERT_TRUE(extent.ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_LT(extent->length, enc.size());  // Stored form is smaller.
  EXPECT_EQ(device.stats().decoded_bytes, enc.size());
  // Codec accounting covers the payload only; the extent additionally
  // stores the 4-byte checksum footer.
  EXPECT_EQ(device.stats().encoded_bytes, extent->length - kBlobChecksumBytes);
  EXPECT_GT(device.stats().compression_ratio(), 1.5);

  BufferPool pool(&device, 16);
  pool.set_page_codec(GetPageCodec(PageCodecKind::kDeltaVarint));
  auto record = ReadExtent(&pool, *extent, device.page_size());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record, enc.buffer());
  EXPECT_EQ(pool.decoded_misses(), 1u);
  const uint64_t reads_after_first = pool.io_stats().total_reads();
  EXPECT_GT(reads_after_first, 0u);
  // Repeat read: decoded-cache hit, no new page IO, same bytes.
  auto again = ReadExtent(&pool, *extent, device.page_size());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, enc.buffer());
  EXPECT_EQ(pool.decoded_hits(), 1u);
  EXPECT_EQ(pool.io_stats().total_reads(), reads_after_first);
  // The read side accounted the decode against the shard cursor
  // (payload only — the checksum footer is stripped before decode).
  EXPECT_EQ(pool.io_stats().encoded_bytes, extent->length - kBlobChecksumBytes);
  EXPECT_EQ(pool.io_stats().decoded_bytes, enc.size());
  // Clear drops the decoded cache: the next read decodes (and fetches)
  // again — the cold-measurement contract.
  pool.Clear();
  auto cold = ReadExtent(&pool, *extent, device.page_size());
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(pool.decoded_misses(), 2u);
  EXPECT_GT(pool.io_stats().total_reads(), reads_after_first);
}

TEST(PageCodecTest, CorruptStoredExtentSurfacesCorruption) {
  BlockDevice device(128);
  ExtentWriter writer(&device, 0, 1,
                      GetPageCodec(PageCodecKind::kDeltaVarint));
  Encoder enc;
  RecordShape shape;
  for (int i = 0; i < 64; ++i) enc.PutU32(static_cast<uint32_t>(i * 7));
  shape.U32Delta(64);
  auto extent = writer.Append(enc.buffer(), shape);
  ASSERT_TRUE(extent.ok());
  ASSERT_TRUE(writer.Flush().ok());
  // Truncate the stored record: a reader must see Corruption, not bytes.
  Extent cut = *extent;
  cut.length = extent->length / 2;
  BufferPool pool(&device, 8);
  pool.set_page_codec(GetPageCodec(PageCodecKind::kDeltaVarint));
  EXPECT_TRUE(
      ReadExtent(&pool, cut, device.page_size()).status().IsCorruption());
}

TEST(PageCodecTest, DecodedCacheRespectsItsByteBudget) {
  BlockDevice device(256);
  ExtentWriter writer(&device, 0, 1,
                      GetPageCodec(PageCodecKind::kDeltaVarint));
  std::vector<Extent> extents;
  for (int r = 0; r < 8; ++r) {
    Encoder enc;
    RecordShape shape;
    for (int i = 0; i < 100; ++i) {
      enc.PutU32(static_cast<uint32_t>(r * 1000 + i));
    }
    shape.U32Delta(100);
    auto extent = writer.Append(enc.buffer(), shape);
    ASSERT_TRUE(extent.ok());
    extents.push_back(*extent);
  }
  ASSERT_TRUE(writer.Flush().ok());
  BufferPool pool(&device, 64);
  pool.set_page_codec(GetPageCodec(PageCodecKind::kDeltaVarint));
  pool.set_decoded_cache_capacity(900);  // Fits two 400-byte records.
  for (const Extent& extent : extents) {
    ASSERT_TRUE(ReadExtent(&pool, extent, device.page_size()).ok());
    EXPECT_LE(pool.decoded_cache_bytes(), 900u);
  }
  // The most recent record is still cached; the oldest was evicted.
  ASSERT_TRUE(ReadExtent(&pool, extents.back(), device.page_size()).ok());
  EXPECT_EQ(pool.decoded_hits(), 1u);
  ASSERT_TRUE(ReadExtent(&pool, extents.front(), device.page_size()).ok());
  EXPECT_EQ(pool.decoded_hits(), 1u);  // Front missed again.
}

}  // namespace
}  // namespace streach
