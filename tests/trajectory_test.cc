// Unit tests for src/trajectory: Trajectory, resampling, TrajectoryStore.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "trajectory/trajectory.h"
#include "trajectory/trajectory_store.h"

namespace streach {
namespace {

Trajectory MakeLine(ObjectId id, Timestamp start, int n, Point from,
                    Point step) {
  std::vector<Point> samples;
  for (int i = 0; i < n; ++i) samples.push_back(from + step * i);
  return Trajectory(id, start, std::move(samples));
}

// ------------------------------------------------------------- Trajectory

TEST(TrajectoryTest, SpanAndAccess) {
  const Trajectory tr = MakeLine(0, 5, 4, Point(0, 0), Point(1, 2));
  EXPECT_EQ(tr.span(), TimeInterval(5, 8));
  EXPECT_EQ(tr.num_samples(), 4u);
  EXPECT_EQ(tr.At(5), Point(0, 0));
  EXPECT_EQ(tr.At(7), Point(2, 4));
  EXPECT_TRUE(tr.Covers(8));
  EXPECT_FALSE(tr.Covers(9));
  EXPECT_FALSE(tr.Covers(4));
}

TEST(TrajectoryTest, SegmentMbr) {
  const Trajectory tr = MakeLine(0, 0, 10, Point(0, 0), Point(1, -1));
  const Rect mbr = tr.SegmentMbr(TimeInterval(2, 5));
  EXPECT_EQ(mbr, Rect(2, -5, 5, -2));
}

TEST(TrajectoryTest, SegmentMbrClampsToSpan) {
  const Trajectory tr = MakeLine(0, 0, 5, Point(0, 0), Point(1, 0));
  const Rect mbr = tr.SegmentMbr(TimeInterval(3, 100));
  EXPECT_EQ(mbr, Rect(3, 0, 4, 0));
  EXPECT_TRUE(tr.SegmentMbr(TimeInterval(50, 60)).empty());
}

// --------------------------------------------------------- ResampleToTicks

TEST(ResampleTest, DenseInputPassesThrough) {
  std::vector<GpsFix> fixes = {{0, Point(0, 0)}, {1, Point(1, 1)},
                               {2, Point(2, 2)}};
  const auto samples = ResampleToTicks(fixes);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[1], Point(1, 1));
}

TEST(ResampleTest, LinearInterpolation) {
  std::vector<GpsFix> fixes = {{0, Point(0, 0)}, {4, Point(8, 4)}};
  const auto samples = ResampleToTicks(fixes);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples[0], Point(0, 0));
  EXPECT_EQ(samples[1], Point(2, 1));
  EXPECT_EQ(samples[2], Point(4, 2));
  EXPECT_EQ(samples[3], Point(6, 3));
  EXPECT_EQ(samples[4], Point(8, 4));
}

TEST(ResampleTest, MultiSegment) {
  std::vector<GpsFix> fixes = {{0, Point(0, 0)}, {2, Point(2, 0)},
                               {6, Point(2, 8)}};
  const auto samples = ResampleToTicks(fixes);
  ASSERT_EQ(samples.size(), 7u);
  EXPECT_EQ(samples[1], Point(1, 0));
  EXPECT_EQ(samples[4], Point(2, 4));
}

TEST(ResampleTest, EmptyAndSingleton) {
  EXPECT_TRUE(ResampleToTicks({}).empty());
  const auto one = ResampleToTicks({{3, Point(7, 7)}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], Point(7, 7));
}

TEST(ResampleTest, EndpointsPreservedProperty) {
  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    std::vector<GpsFix> fixes;
    Timestamp t = 0;
    for (int i = 0; i < 10; ++i) {
      fixes.push_back({t, Point(rng.UniformDouble(0, 100),
                                rng.UniformDouble(0, 100))});
      t += 1 + static_cast<Timestamp>(rng.Uniform(10));
    }
    const auto samples = ResampleToTicks(fixes);
    ASSERT_EQ(samples.size(),
              static_cast<size_t>(fixes.back().time - fixes.front().time + 1));
    // Every original fix is reproduced exactly at its tick.
    for (const GpsFix& f : fixes) {
      const Point& p = samples[static_cast<size_t>(f.time)];
      EXPECT_NEAR(p.x, f.position.x, 1e-9);
      EXPECT_NEAR(p.y, f.position.y, 1e-9);
    }
  }
}

// -------------------------------------------------------- TrajectoryStore

TEST(TrajectoryStoreTest, AddAndAccess) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(MakeLine(0, 0, 5, Point(0, 0), Point(1, 0))).ok());
  ASSERT_TRUE(store.Add(MakeLine(1, 0, 5, Point(0, 5), Point(1, 0))).ok());
  EXPECT_EQ(store.num_objects(), 2u);
  EXPECT_EQ(store.span(), TimeInterval(0, 4));
  EXPECT_EQ(store.PositionAt(1, 2), Point(2, 5));
}

TEST(TrajectoryStoreTest, RejectsOutOfOrderIds) {
  TrajectoryStore store;
  EXPECT_TRUE(store.Add(MakeLine(1, 0, 5, Point(0, 0), Point(1, 0)))
                  .IsInvalidArgument());
}

TEST(TrajectoryStoreTest, RejectsMismatchedSpans) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(MakeLine(0, 0, 5, Point(0, 0), Point(1, 0))).ok());
  EXPECT_TRUE(store.Add(MakeLine(1, 0, 6, Point(0, 0), Point(1, 0)))
                  .IsInvalidArgument());
  EXPECT_TRUE(store.Add(MakeLine(1, 1, 5, Point(0, 0), Point(1, 0)))
                  .IsInvalidArgument());
}

TEST(TrajectoryStoreTest, RejectsEmptyTrajectory) {
  TrajectoryStore store;
  EXPECT_TRUE(store.Add(Trajectory(0, 0, {})).IsInvalidArgument());
}

TEST(TrajectoryStoreTest, ComputeExtent) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(MakeLine(0, 0, 3, Point(-1, 2), Point(1, 1))).ok());
  ASSERT_TRUE(store.Add(MakeLine(1, 0, 3, Point(5, -3), Point(0, 0))).ok());
  EXPECT_EQ(store.ComputeExtent(), Rect(-1, -3, 5, 4));
}

TEST(TrajectoryStoreTest, RawSizeBytes) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(MakeLine(0, 0, 100, Point(0, 0), Point(1, 0))).ok());
  ASSERT_TRUE(store.Add(MakeLine(1, 0, 100, Point(0, 0), Point(1, 0))).ok());
  EXPECT_EQ(store.RawSizeBytes(), 2u * 100u * 16u);
}

}  // namespace
}  // namespace streach
