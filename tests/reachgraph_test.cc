// Correctness tests for the ReachGraph index (§5): DN reduction
// invariants, long-edge augmentation, disk partitioning, and agreement of
// all four traversal algorithms with the brute-force oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "generators/datasets.h"
#include "generators/random_waypoint.h"
#include "generators/workload.h"
#include "join/contact_extractor.h"
#include "network/brute_force.h"
#include "network/contact_network.h"
#include "reachgraph/augmenter.h"
#include "reachgraph/dn_builder.h"
#include "reachgraph/dn_graph.h"
#include "reachgraph/reach_graph_index.h"

namespace streach {
namespace {

ContactNetwork Figure1Network() {
  std::vector<Contact> contacts = {
      Contact(0, 1, TimeInterval(0, 0)),
      Contact(1, 3, TimeInterval(1, 1)),
      Contact(2, 3, TimeInterval(1, 2)),
      Contact(0, 1, TimeInterval(2, 3)),
  };
  return ContactNetwork(4, TimeInterval(0, 3), std::move(contacts));
}

ContactNetwork RandomRwpNetwork(uint64_t seed, int objects = 40,
                                Timestamp ticks = 160, double dt = 30.0) {
  RandomWaypointParams params;
  params.num_objects = objects;
  params.area = Rect(0, 0, 400, 400);
  params.min_speed = 5;
  params.max_speed = 15;
  params.duration = ticks;
  params.seed = seed;
  auto store = GenerateRandomWaypoint(params);
  EXPECT_TRUE(store.ok());
  return ContactNetwork(store->num_objects(), store->span(),
                        ExtractContacts(*store, dt));
}

// ------------------------------------------------------------- DnBuilder

TEST(DnBuilderTest, Figure1Reduction) {
  auto dn = BuildDnGraph(Figure1Network());
  ASSERT_TRUE(dn.ok());
  // Every (object, tick) maps to exactly one vertex whose members contain
  // the object.
  for (ObjectId o = 0; o < 4; ++o) {
    for (Timestamp t = 0; t <= 3; ++t) {
      const VertexId v = dn->VertexOf(o, t);
      ASSERT_NE(v, kInvalidVertex);
      const DnVertex& vx = dn->vertex(v);
      EXPECT_TRUE(vx.span.Contains(t));
      EXPECT_TRUE(std::binary_search(vx.members.begin(), vx.members.end(), o));
    }
  }
  // At t=0 the components are {o0,o1}, {o2}, {o3}.
  const VertexId c01 = dn->VertexOf(0, 0);
  EXPECT_EQ(c01, dn->VertexOf(1, 0));
  EXPECT_NE(c01, dn->VertexOf(2, 0));
  EXPECT_NE(dn->VertexOf(2, 0), dn->VertexOf(3, 0));
  // At t=1: {o1,o2,o3} together (contacts o1-o3 and o2-o3), {o0} alone.
  const VertexId c123 = dn->VertexOf(1, 1);
  EXPECT_EQ(c123, dn->VertexOf(2, 1));
  EXPECT_EQ(c123, dn->VertexOf(3, 1));
  EXPECT_NE(c123, dn->VertexOf(0, 1));
}

TEST(DnBuilderTest, MergingCollapsesStableComponents) {
  // Two objects in permanent contact, one isolated: with merging the DAG
  // needs just 2 vertices; unmerged it needs 2 per tick.
  std::vector<Contact> contacts = {Contact(0, 1, TimeInterval(0, 9))};
  const ContactNetwork net(3, TimeInterval(0, 9), std::move(contacts));
  auto merged = BuildDnGraph(net);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_vertices(), 2u);
  EXPECT_EQ(merged->stats().num_edges, 0u);
  EXPECT_EQ(merged->stats().unmerged_vertices, 20u);

  DnBuilderOptions no_merge;
  no_merge.merge_identical_components = false;
  auto unmerged = BuildDnGraph(net, no_merge);
  ASSERT_TRUE(unmerged.ok());
  EXPECT_EQ(unmerged->num_vertices(), 20u);
}

TEST(DnBuilderTest, VertexIdsAreTopological) {
  const ContactNetwork net = RandomRwpNetwork(71, 30, 80);
  auto dn = BuildDnGraph(net);
  ASSERT_TRUE(dn.ok());
  for (VertexId v = 0; v < dn->num_vertices(); ++v) {
    for (VertexId w : dn->vertex(v).out) {
      EXPECT_GT(w, v);
      // DN_1 edge arrives exactly one tick after the source span ends.
      EXPECT_EQ(dn->vertex(w).span.start, dn->vertex(v).span.end + 1);
    }
    for (VertexId u : dn->vertex(v).in) {
      EXPECT_LT(u, v);
    }
  }
}

TEST(DnBuilderTest, MembersPartitionObjectsPerTick) {
  const ContactNetwork net = RandomRwpNetwork(73, 25, 60);
  auto dn = BuildDnGraph(net);
  ASSERT_TRUE(dn.ok());
  for (Timestamp t = 0; t < 60; ++t) {
    std::set<ObjectId> seen;
    std::set<VertexId> vertices;
    for (ObjectId o = 0; o < 25; ++o) {
      vertices.insert(dn->VertexOf(o, t));
    }
    for (VertexId v : vertices) {
      for (ObjectId o : dn->vertex(v).members) {
        EXPECT_TRUE(seen.insert(o).second)
            << "object in two components at t=" << t;
      }
    }
    EXPECT_EQ(seen.size(), 25u);
  }
}

TEST(DnBuilderTest, ReductionCountsMatchPaperDirection) {
  // DN must be significantly smaller than the unmerged component DAG,
  // which in turn is smaller than the TEN (§6.2.1.1).
  const ContactNetwork net = RandomRwpNetwork(79, 50, 200);
  auto dn = BuildDnGraph(net);
  ASSERT_TRUE(dn.ok());
  const TenStats ten = net.ComputeTenStats();
  EXPECT_LT(dn->stats().num_vertices, dn->stats().unmerged_vertices);
  EXPECT_LT(dn->stats().unmerged_vertices, ten.num_vertices);
  EXPECT_LT(dn->stats().num_edges, ten.num_edges);
}

TEST(DnBuilderTest, DnPreservesReachabilityUnderMergeToggle) {
  // Vertex-level reachability in DN must be identical with and without
  // the merging step (the merge is lossless).
  const ContactNetwork net = RandomRwpNetwork(83, 25, 80);
  auto merged = BuildDnGraph(net);
  DnBuilderOptions no_merge_opts;
  no_merge_opts.merge_identical_components = false;
  auto plain = BuildDnGraph(net, no_merge_opts);
  ASSERT_TRUE(merged.ok() && plain.ok());
  // Compare through full queries on indexes built from each graph.
  ReachGraphOptions options;
  options.num_resolutions = 1;
  auto index_merged = ReachGraphIndex::BuildFromDn(std::move(*merged), options);
  auto index_plain = ReachGraphIndex::BuildFromDn(std::move(*plain), options);
  ASSERT_TRUE(index_merged.ok() && index_plain.ok());
  WorkloadParams wl;
  wl.num_queries = 80;
  wl.num_objects = 25;
  wl.span = TimeInterval(0, 79);
  wl.min_interval_len = 5;
  wl.max_interval_len = 60;
  wl.seed = 17;
  for (const ReachQuery& q : GenerateWorkload(wl)) {
    auto a = (*index_merged)->QueryBmBfs(q);
    auto b = (*index_plain)->QueryBmBfs(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->reachable, b->reachable) << q.ToString();
  }
}

// -------------------------------------------------------------- Augmenter

TEST(AugmenterTest, LongEdgesAreSoundAndAnchored) {
  const ContactNetwork net = RandomRwpNetwork(89, 30, 96);
  auto dn = BuildDnGraph(net);
  ASSERT_TRUE(dn.ok());
  AugmenterOptions options;
  options.num_resolutions = 5;  // L up to 16.
  ASSERT_TRUE(AugmentWithLongEdges(&*dn, options).ok());
  EXPECT_GT(dn->stats().num_long_edges, 0u);
  for (VertexId v = 0; v < dn->num_vertices(); ++v) {
    const DnVertex& vx = dn->vertex(v);
    for (const LongEdge& e : vx.long_out) {
      // Anchor alignment and source/target liveness.
      EXPECT_EQ((e.anchor - net.span().start) % e.length, 0);
      EXPECT_TRUE(vx.span.Contains(e.anchor));
      EXPECT_TRUE(dn->vertex(e.target).span.Contains(
          static_cast<Timestamp>(e.anchor + e.length)));
      EXPECT_NE(e.target, v);
      // Soundness: some member of the target is brute-force reachable
      // from some member of the source over [anchor, anchor+L].
      const ObjectId src = vx.members.front();
      const auto closure = BruteForceClosure(
          net, src, TimeInterval(e.anchor, e.anchor + e.length));
      bool any = false;
      for (ObjectId o : dn->vertex(e.target).members) {
        any |= closure[o] != kInvalidTime;
      }
      EXPECT_TRUE(any) << "unsound long edge";
    }
  }
}

TEST(AugmenterTest, CompletenessAtResolutionBoundaries) {
  // For every pair of vertices u alive at ta, v alive at ta+L with v's
  // component brute-force reachable from u's, a long edge (or identity)
  // must exist. Checked on a small network for L = 4.
  const ContactNetwork net = RandomRwpNetwork(97, 15, 24);
  auto dn = BuildDnGraph(net);
  ASSERT_TRUE(dn.ok());
  AugmenterOptions options;
  options.num_resolutions = 3;  // L = 2, 4.
  ASSERT_TRUE(AugmentWithLongEdges(&*dn, options).ok());
  const Timestamp L = 4;
  for (Timestamp ta = 0; ta + L <= net.span().end; ta += L) {
    for (ObjectId o = 0; o < 15; ++o) {
      const VertexId u = dn->VertexOf(o, ta);
      const auto closure = BruteForceClosure(net, o, TimeInterval(ta, ta + L));
      for (ObjectId p = 0; p < 15; ++p) {
        if (closure[p] == kInvalidTime) continue;
        const VertexId v = dn->VertexOf(p, ta + L);
        if (v == u) continue;  // Identity: staying put, no edge needed.
        bool found = false;
        for (const LongEdge& e : dn->vertex(u).long_out) {
          if (e.target == v && e.anchor == ta && e.length == L) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "missing long edge o" << o << "@" << ta
                           << " -> o" << p << "@" << ta + L;
      }
    }
  }
}

TEST(AugmenterTest, DegreeGrowsWithResolution) {
  // Table 4's qualitative shape: average degree increases with L.
  const ContactNetwork net = RandomRwpNetwork(101, 60, 256, 40.0);
  auto dn = BuildDnGraph(net);
  ASSERT_TRUE(dn.ok());
  AugmenterOptions options;
  options.num_resolutions = 6;
  ASSERT_TRUE(AugmentWithLongEdges(&*dn, options).ok());
  double prev = 0;
  int increases = 0;
  for (int32_t len : {2, 4, 8, 16, 32}) {
    const double deg = dn->AverageDegreeAtResolution(len);
    if (deg > prev) ++increases;
    prev = deg;
  }
  EXPECT_GE(increases, 4);
}

// --------------------------------------------------------- ReachGraphIndex

struct TraversalCase {
  const char* name;
  int num_resolutions;
};

class ReachGraphQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(ReachGraphQueryTest, AllTraversalsMatchBruteForce) {
  const ContactNetwork net = RandomRwpNetwork(103, 40, 160);
  ReachGraphOptions options;
  options.num_resolutions = GetParam();
  options.partition_depth = 8;
  auto index = ReachGraphIndex::Build(net, options);
  ASSERT_TRUE(index.ok());
  WorkloadParams wl;
  wl.num_queries = 150;
  wl.num_objects = 40;
  wl.span = net.span();
  wl.min_interval_len = 5;
  wl.max_interval_len = 150;
  wl.seed = 11;
  int reachable = 0;
  for (const ReachQuery& q : GenerateWorkload(wl)) {
    const bool expected =
        BruteForceReach(net, q.source, q.destination, q.interval).reachable;
    reachable += expected;
    auto bm = (*index)->QueryBmBfs(q);
    auto bb = (*index)->QueryBBfs(q);
    auto eb = (*index)->QueryEBfs(q);
    auto ed = (*index)->QueryEDfs(q);
    ASSERT_TRUE(bm.ok() && bb.ok() && eb.ok() && ed.ok());
    EXPECT_EQ(bm->reachable, expected) << "BM-BFS " << q.ToString();
    EXPECT_EQ(bb->reachable, expected) << "B-BFS " << q.ToString();
    EXPECT_EQ(eb->reachable, expected) << "E-BFS " << q.ToString();
    EXPECT_EQ(ed->reachable, expected) << "E-DFS " << q.ToString();
  }
  EXPECT_GT(reachable, 10);
  EXPECT_LT(reachable, 140);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, ReachGraphQueryTest,
                         ::testing::Values(1, 2, 4, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "R" + std::to_string(info.param);
                         });

TEST(ReachGraphTest, Figure1Queries) {
  ReachGraphOptions options;
  options.num_resolutions = 2;
  auto index = ReachGraphIndex::Build(Figure1Network(), options);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->QueryBmBfs({0, 3, TimeInterval(0, 1)})->reachable);
  EXPECT_FALSE((*index)->QueryBmBfs({3, 0, TimeInterval(0, 1)})->reachable);
  EXPECT_TRUE((*index)->QueryBmBfs({0, 1, TimeInterval(2, 3)})->reachable);
  EXPECT_FALSE((*index)->QueryBmBfs({0, 3, TimeInterval(1, 3)})->reachable);
  EXPECT_TRUE((*index)->QueryBmBfs({2, 0, TimeInterval(1, 3)})->reachable);
}

TEST(ReachGraphTest, VnDatasetAgreement) {
  auto dataset = MakeVnDataset(DatasetScale::kSmall, 128);
  ASSERT_TRUE(dataset.ok());
  const ContactNetwork net(
      dataset->num_objects(), dataset->span(),
      ExtractContacts(dataset->store, dataset->contact_range));
  ReachGraphOptions options;
  auto index = ReachGraphIndex::Build(net, options);
  ASSERT_TRUE(index.ok());
  WorkloadParams wl;
  wl.num_queries = 80;
  wl.num_objects = dataset->num_objects();
  wl.span = net.span();
  wl.min_interval_len = 10;
  wl.max_interval_len = 100;
  wl.seed = 13;
  for (const ReachQuery& q : GenerateWorkload(wl)) {
    const bool expected =
        BruteForceReach(net, q.source, q.destination, q.interval).reachable;
    auto bm = (*index)->QueryBmBfs(q);
    ASSERT_TRUE(bm.ok());
    EXPECT_EQ(bm->reachable, expected) << q.ToString();
  }
}

TEST(ReachGraphTest, PartitionDepthSweepIsExact) {
  const ContactNetwork net = RandomRwpNetwork(107, 30, 100);
  WorkloadParams wl;
  wl.num_queries = 50;
  wl.num_objects = 30;
  wl.span = net.span();
  wl.min_interval_len = 10;
  wl.max_interval_len = 90;
  wl.seed = 19;
  const auto queries = GenerateWorkload(wl);
  for (int dp : {0, 1, 4, 32, 64}) {
    ReachGraphOptions options;
    options.partition_depth = dp;
    auto index = ReachGraphIndex::Build(net, options);
    ASSERT_TRUE(index.ok());
    for (const ReachQuery& q : queries) {
      const bool expected =
          BruteForceReach(net, q.source, q.destination, q.interval).reachable;
      EXPECT_EQ((*index)->QueryBmBfs(q)->reachable, expected)
          << "dp=" << dp << " " << q.ToString();
    }
  }
}

TEST(ReachGraphTest, SelfAndDegenerateQueries) {
  const ContactNetwork net = Figure1Network();
  auto index = ReachGraphIndex::Build(net, ReachGraphOptions{});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->QueryBmBfs({2, 2, TimeInterval(0, 3)})->reachable);
  EXPECT_FALSE((*index)->QueryBmBfs({0, 1, TimeInterval(9, 5)})->reachable);
  EXPECT_FALSE((*index)->QueryBmBfs({0, 1, TimeInterval(50, 60)})->reachable);
  // Clamping.
  EXPECT_TRUE((*index)->QueryBmBfs({0, 3, TimeInterval(-5, 1)})->reachable);
}

TEST(ReachGraphTest, BuildStatsAndPartitions) {
  const ContactNetwork net = RandomRwpNetwork(109, 30, 120);
  ReachGraphOptions options;
  options.partition_depth = 16;
  auto index = ReachGraphIndex::Build(net, options);
  ASSERT_TRUE(index.ok());
  const auto& stats = (*index)->build_stats();
  EXPECT_GT(stats.dn.num_vertices, 0u);
  EXPECT_GT(stats.dn.num_edges, 0u);
  EXPECT_GT(stats.dn.num_long_edges, 0u);
  EXPECT_GT(stats.num_partitions, 0u);
  EXPECT_LE(stats.num_partitions, stats.dn.num_vertices);
  EXPECT_GT(stats.index_pages, 0u);
  EXPECT_EQ((*index)->num_vertices(), stats.dn.num_vertices);
}

TEST(ReachGraphTest, PartitionDepthTradeoffShape) {
  // Figure 12's qualitative shape: query IO falls from depth 0 to an
  // interior optimum, then rises sharply when partitions get so large
  // that fetching one drags in mostly redundant vertices. (The paper's
  // optimum is 32 at its scale; at this test's scale it sits near 16.)
  RandomWaypointParams params;
  params.num_objects = 200;
  params.area = Rect(0, 0, 1000, 1000);
  params.min_speed = 5;
  params.max_speed = 15;
  params.duration = 600;
  params.seed = 113;
  auto store = GenerateRandomWaypoint(params);
  ASSERT_TRUE(store.ok());
  const ContactNetwork net(store->num_objects(), store->span(),
                           ExtractContacts(*store, 30.0));
  WorkloadParams wl;
  wl.num_queries = 30;
  wl.num_objects = 200;
  wl.span = net.span();
  wl.min_interval_len = 150;
  wl.max_interval_len = 350;
  wl.seed = 23;
  const auto queries = GenerateWorkload(wl);
  auto measure = [&](int dp) {
    ReachGraphOptions options;
    options.partition_depth = dp;
    auto index = ReachGraphIndex::Build(net, options);
    EXPECT_TRUE(index.ok());
    double io = 0;
    for (const ReachQuery& q : queries) {
      (*index)->ClearCache();
      EXPECT_TRUE((*index)->QueryBmBfs(q).ok());
      io += (*index)->last_query_stats().io_cost;
    }
    return io / queries.size();
  };
  const double at_0 = measure(0);
  const double at_16 = measure(16);
  const double at_64 = measure(64);
  EXPECT_LT(at_16, at_0);   // Buffering future vertices pays off...
  EXPECT_LT(at_16, at_64);  // ...until partitions turn mostly redundant.
}

TEST(ReachGraphTest, QueryStatsTrackIo) {
  const ContactNetwork net = RandomRwpNetwork(127, 40, 160);
  auto index = ReachGraphIndex::Build(net, ReachGraphOptions{});
  ASSERT_TRUE(index.ok());
  (*index)->ClearCache();
  ASSERT_TRUE((*index)->QueryBmBfs({0, 20, TimeInterval(0, 150)}).ok());
  const QueryStats& stats = (*index)->last_query_stats();
  EXPECT_GT(stats.io_cost, 0.0);
  EXPECT_GT(stats.pages_fetched, 0u);
}

}  // namespace
}  // namespace streach
