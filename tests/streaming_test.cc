// Streaming-ingestion equivalence suite.
//
// The invariant under test: a SegmentedIndex over any append order
// (within the lateness bound), any seal schedule (automatic grid,
// adversarial mid-run seals, unsealed live head), any shard count and
// any page codec answers byte-identically to a one-shot batch build
// over the same contacts — and both match the brute-force oracle.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "generators/random_waypoint.h"
#include "join/contact_extractor.h"
#include "network/brute_force.h"
#include "network/contact_network.h"
#include "stream/head_segment.h"
#include "stream/segmented_index.h"
#include "stream/streaming_ingestor.h"
#include "stream/streaming_options.h"
#include "test_util.h"

namespace streach {
namespace {

constexpr size_t kObjects = 40;
constexpr TimeInterval kSpan(0, 199);

std::vector<Contact> MakeRandomContacts(uint32_t seed, size_t count) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<ObjectId> object(0, kObjects - 1);
  std::uniform_int_distribution<Timestamp> start(kSpan.start, kSpan.end);
  std::geometric_distribution<int> run_length(0.15);
  std::vector<Contact> contacts;
  contacts.reserve(count);
  while (contacts.size() < count) {
    const ObjectId a = object(rng);
    const ObjectId b = object(rng);
    if (a == b) continue;
    const Timestamp s = start(rng);
    const Timestamp e =
        std::min<Timestamp>(kSpan.end, s + run_length(rng));
    contacts.emplace_back(a, b, TimeInterval(s, e));
  }
  return contacts;
}

/// The ContactSink delivery order: runs grouped by close tick.
void SortBySinkOrder(std::vector<Contact>* contacts) {
  std::sort(contacts->begin(), contacts->end(),
            [](const Contact& x, const Contact& y) {
              return std::tie(x.validity.end, x.validity.start, x.a, x.b) <
                     std::tie(y.validity.end, y.validity.start, y.a, y.b);
            });
}

/// A random arrival order that provably respects `lateness`: sorting by
/// end + U[0, lateness] guarantees that when a contact arrives, every
/// earlier arrival closed at most `lateness` ticks after it.
std::vector<Contact> ShuffleWithinLateness(std::vector<Contact> contacts,
                                           int lateness, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> jitter(0, lateness);
  std::vector<std::pair<std::pair<int64_t, uint32_t>, Contact>> keyed;
  keyed.reserve(contacts.size());
  for (const Contact& c : contacts) {
    keyed.push_back(
        {{static_cast<int64_t>(c.validity.end) + jitter(rng), rng()}, c});
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<Contact> arrivals;
  arrivals.reserve(keyed.size());
  for (auto& [key, c] : keyed) arrivals.push_back(c);
  return arrivals;
}

struct BuildSpec {
  int seal_interval = 64;
  int lateness = 0;
  int num_shards = 1;
  PageCodecKind codec = PageCodecKind::kRaw;
  int manual_seal_every = 0;  // Adversarial Seal() after every N appends.
  bool seal_remaining = true;
  std::string label;
};

std::shared_ptr<StreamingIngestor> BuildIngestor(
    const std::vector<Contact>& arrivals, const BuildSpec& spec) {
  StreamingOptions options;
  options.num_objects = kObjects;
  options.span = kSpan;
  options.seal_interval_ticks = spec.seal_interval;
  options.max_lateness_ticks = spec.lateness;
  options.num_shards = spec.num_shards;
  options.block_contacts = 16;  // Small blocks: many placement units.
  options.build.page_codec = spec.codec;
  auto ingestor = StreamingIngestor::Create(options);
  EXPECT_TRUE(ingestor.ok()) << ingestor.status().ToString();
  size_t appended = 0;
  for (const Contact& c : arrivals) {
    const Status status = (*ingestor)->Append(c);
    EXPECT_TRUE(status.ok()) << spec.label << ": " << status.ToString();
    ++appended;
    if (spec.manual_seal_every > 0 &&
        appended % static_cast<size_t>(spec.manual_seal_every) == 0) {
      const Status seal = (*ingestor)->Seal();
      EXPECT_TRUE(seal.ok()) << spec.label << ": " << seal.ToString();
    }
  }
  if (spec.seal_remaining) {
    const Status seal = (*ingestor)->SealRemaining();
    EXPECT_TRUE(seal.ok()) << spec.label << ": " << seal.ToString();
  }
  return *ingestor;
}

std::vector<ReachQuery> MakeQueries(uint32_t seed, size_t count) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<ObjectId> object(0, kObjects - 1);
  std::uniform_int_distribution<Timestamp> tick(kSpan.start, kSpan.end);
  std::vector<ReachQuery> queries;
  queries.reserve(count + 4);
  while (queries.size() < count) {
    ReachQuery q;
    q.source = object(rng);
    q.destination = object(rng);
    const Timestamp a = tick(rng);
    const Timestamp b = tick(rng);
    q.interval = TimeInterval(std::min(a, b), std::max(a, b));
    queries.push_back(q);
  }
  // Edge cases: self-query, empty interval, out-of-range destination,
  // interval clamped by the span.
  queries.push_back({5, 5, TimeInterval(10, 40)});
  queries.push_back({3, 9, TimeInterval(50, 20)});
  queries.push_back({2, static_cast<ObjectId>(kObjects + 3),
                     TimeInterval(0, 100)});
  queries.push_back({1, 7, TimeInterval(-50, kSpan.end + 50)});
  return queries;
}

std::vector<ReachAnswer> Answers(ReachabilityIndex* index,
                                 const std::vector<ReachQuery>& queries) {
  std::vector<ReachAnswer> answers;
  answers.reserve(queries.size());
  for (const ReachQuery& q : queries) {
    auto answer = index->Query(q);
    EXPECT_TRUE(answer.ok()) << q.ToString() << ": "
                             << answer.status().ToString();
    answers.push_back(answer.ok() ? *answer : ReachAnswer{});
  }
  return answers;
}

TEST(HeadSegment, AbsorbsReordersAndExtractsCanonically) {
  HeadSegment head(/*max_lateness_ticks=*/10);
  std::vector<Contact> contacts = MakeRandomContacts(3, 300);
  std::vector<Contact> arrivals = ShuffleWithinLateness(contacts, 10, 4);
  for (const Contact& c : arrivals) ASSERT_TRUE(head.Append(c).ok());
  EXPECT_EQ(head.size(), contacts.size());
  EXPECT_EQ(head.SafeWatermark(), kSpan.end - 10 - 1);

  // Overlap collection sees everything resident, reorder buffer included.
  std::vector<Contact> overlapping;
  head.CollectOverlapping(kSpan, &overlapping);
  EXPECT_EQ(overlapping.size(), contacts.size());

  // Extraction returns exactly the runs closing at or before the
  // watermark, in canonical batch-build order.
  const Timestamp watermark = 120;
  std::vector<Contact> extracted = head.ExtractThrough(watermark);
  EXPECT_TRUE(std::is_sorted(extracted.begin(), extracted.end()));
  size_t expected = 0;
  for (const Contact& c : contacts) {
    expected += (c.validity.end <= watermark);
  }
  EXPECT_EQ(extracted.size(), expected);
  EXPECT_EQ(head.size(), contacts.size() - expected);
  EXPECT_EQ(head.sealed_through(), watermark);

  // The seal line is final: a run closing at or before it is rejected.
  const Status late = head.Append(Contact(0, 1, TimeInterval(100, 110)));
  EXPECT_TRUE(late.IsInvalidArgument()) << late.ToString();
  // A re-extract below the line is a no-op.
  EXPECT_TRUE(head.ExtractThrough(watermark - 5).empty());
}

TEST(StreamingEquivalence, AppendOrderSealScheduleShardCodecLattice) {
  const std::vector<Contact> contacts = MakeRandomContacts(7, 220);
  const ContactNetwork network(kObjects, kSpan, contacts);
  const std::vector<ReachQuery> queries = MakeQueries(11, 60);

  std::vector<ReachAnswer> oracle;
  for (const ReachQuery& q : queries) {
    oracle.push_back(
        BruteForceReach(network, q.source, q.destination, q.interval));
  }
  const std::string oracle_bytes = SerializeAnswers(oracle);

  // One-shot batch build: canonical arrival order, one seal at the end.
  std::vector<Contact> canonical = contacts;
  SortBySinkOrder(&canonical);
  BuildSpec one_shot;
  one_shot.seal_interval = static_cast<int>(kSpan.length());
  one_shot.label = "one-shot";
  auto reference = BuildIngestor(canonical, one_shot);
  EXPECT_EQ(reference->sealed_segments(), 1u);
  auto reference_index = MakeStreamingBackend(reference);
  EXPECT_EQ(SerializeAnswers(Answers(reference_index.get(), queries)),
            oracle_bytes);

  for (const int num_shards : {1, 4}) {
    for (const PageCodecKind codec :
         {PageCodecKind::kRaw, PageCodecKind::kDeltaVarint}) {
      std::vector<BuildSpec> specs(4);
      specs[0].seal_interval = 16;
      specs[0].label = "auto-seal-16/in-order";
      specs[1].seal_interval = 16;
      specs[1].lateness = 12;
      specs[1].label = "auto-seal-16/shuffled-lateness-12";
      specs[2].seal_interval = 64;
      specs[2].lateness = 5;
      specs[2].manual_seal_every = 17;
      specs[2].label = "adversarial-mid-run-seals";
      specs[3].seal_interval = 16;
      specs[3].lateness = 12;
      specs[3].seal_remaining = false;
      specs[3].label = "live-head-unsealed-tail";
      for (BuildSpec spec : specs) {
        spec.num_shards = num_shards;
        spec.codec = codec;
        spec.label += "/shards=" + std::to_string(num_shards) +
                      "/codec=" + ToString(codec);
        std::vector<Contact> arrivals =
            spec.lateness == 0
                ? canonical
                : ShuffleWithinLateness(contacts, spec.lateness,
                                        /*seed=*/13 + num_shards);
        auto ingestor = BuildIngestor(arrivals, spec);
        if (spec.seal_interval == 16 && spec.seal_remaining) {
          EXPECT_GT(ingestor->sealed_segments(), 4u) << spec.label;
        }
        if (!spec.seal_remaining) {
          EXPECT_GT(ingestor->head_contacts(), 0u) << spec.label;
        }
        auto index = MakeStreamingBackend(ingestor);
        EXPECT_EQ(SerializeAnswers(Answers(index.get(), queries)),
                  oracle_bytes)
            << spec.label;
      }
    }
  }
}

TEST(StreamingEquivalence, ClosuresMatchBruteForceAndBatchLoop) {
  const std::vector<Contact> contacts = MakeRandomContacts(17, 200);
  const ContactNetwork network(kObjects, kSpan, contacts);
  BuildSpec spec;
  spec.seal_interval = 25;
  spec.num_shards = 4;
  spec.codec = PageCodecKind::kDeltaVarint;
  spec.label = "closures";
  std::vector<Contact> canonical = contacts;
  SortBySinkOrder(&canonical);
  auto ingestor = BuildIngestor(canonical, spec);
  auto index = MakeStreamingBackend(ingestor);

  const TimeInterval window(20, 160);
  const std::vector<ObjectId> sources = {0, 7, 13, 21, 34, 39};
  for (const ObjectId source : sources) {
    auto set = index->ReachableSet(source, window);
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    EXPECT_EQ(*set, BruteForceClosure(network, source, window))
        << "source " << source;
  }
  // The batch API is the per-source loop, cheaper — never different.
  auto sets = index->ReachableSets(sources, window);
  ASSERT_TRUE(sets.ok()) << sets.status().ToString();
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ((*sets)[i], BruteForceClosure(network, sources[i], window));
  }
  // An out-of-range source yields the all-unreached set, like the oracle.
  auto none = index->ReachableSet(kObjects + 5, window);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none,
            std::vector<Timestamp>(kObjects, kInvalidTime));
}

TEST(StreamingEquivalence, RunSpanningSealBoundaryIsStitched) {
  // Seal grid of 10 ticks; the {1,2} run [8,14] crosses the boundary at
  // tick 9 and must carry infection from the first segment's era into
  // the second — the cross-segment stitch.
  StreamingOptions options;
  options.num_objects = 8;
  options.span = TimeInterval(0, 39);
  options.seal_interval_ticks = 10;
  auto ingestor = StreamingIngestor::Create(options);
  ASSERT_TRUE(ingestor.ok());
  const std::vector<Contact> contacts = {
      Contact(0, 1, TimeInterval(3, 4)),
      Contact(1, 2, TimeInterval(8, 14)),
      Contact(2, 3, TimeInterval(12, 13)),
      Contact(3, 4, TimeInterval(30, 31)),
  };
  std::vector<Contact> arrivals = contacts;
  SortBySinkOrder(&arrivals);
  for (const Contact& c : arrivals) {
    ASSERT_TRUE((*ingestor)->Append(c).ok());
  }
  ASSERT_TRUE((*ingestor)->SealRemaining().ok());
  EXPECT_GE((*ingestor)->sealed_segments(), 2u);

  const ContactNetwork network(8, options.span, contacts);
  auto index = MakeStreamingBackend(*ingestor);
  auto set = index->ReachableSet(0, options.span);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(*set, BruteForceClosure(network, 0, options.span));
  EXPECT_EQ((*set)[2], 8);   // Infected the tick the crossing run opens.
  EXPECT_EQ((*set)[3], 12);  // Relayed on the far side of the boundary.
  EXPECT_EQ((*set)[4], 30);
}

TEST(StreamingEquivalence, FixpointFlowsBackwardAcrossSegments) {
  // The long {0,1} run [0,30] closes last, so it seals into a LATER
  // segment whose cover reaches back before the earlier segment's.
  // Infection enters it first (0 -> 1 at tick 0) and must then flow
  // into the earlier-sealed {1,2}@[12,13] — which only a repeated
  // sweep round (the fixpoint) can deliver.
  StreamingOptions options;
  options.num_objects = 4;
  options.span = TimeInterval(0, 39);
  options.seal_interval_ticks = 10;
  auto ingestor = StreamingIngestor::Create(options);
  ASSERT_TRUE(ingestor.ok());
  const std::vector<Contact> contacts = {
      Contact(1, 2, TimeInterval(12, 13)),
      Contact(0, 1, TimeInterval(0, 30)),
  };
  std::vector<Contact> arrivals = contacts;
  SortBySinkOrder(&arrivals);
  for (const Contact& c : arrivals) {
    ASSERT_TRUE((*ingestor)->Append(c).ok());
  }
  ASSERT_TRUE((*ingestor)->SealRemaining().ok());

  const ContactNetwork network(4, options.span, contacts);
  auto index = MakeStreamingBackend(*ingestor);
  auto set = index->ReachableSet(0, options.span);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(*set, BruteForceClosure(network, 0, options.span));
  EXPECT_EQ((*set)[1], 0);
  EXPECT_EQ((*set)[2], 12);
}

TEST(StreamingIngestor, RejectsInvalidAndLateAppends) {
  StreamingOptions options;
  options.num_objects = 10;
  options.span = TimeInterval(0, 99);
  options.seal_interval_ticks = 10;
  options.max_lateness_ticks = 2;
  auto ingestor = StreamingIngestor::Create(options);
  ASSERT_TRUE(ingestor.ok());

  EXPECT_TRUE((*ingestor)
                  ->Append(Contact(0, 12, TimeInterval(5, 6)))
                  .IsInvalidArgument());
  EXPECT_TRUE((*ingestor)
                  ->Append(Contact(3, 3, TimeInterval(5, 6)))
                  .IsInvalidArgument());
  EXPECT_TRUE((*ingestor)
                  ->Append(Contact(0, 1, TimeInterval(90, 120)))
                  .IsInvalidArgument());

  // Advance the stream far enough that tick 6 is sealed history.
  ASSERT_TRUE((*ingestor)->Append(Contact(0, 1, TimeInterval(0, 50))).ok());
  const Status late =
      (*ingestor)->Append(Contact(1, 2, TimeInterval(5, 6)));
  EXPECT_TRUE(late.IsInvalidArgument()) << late.ToString();

  // The sink path latches the first failure instead of losing it.
  (*ingestor)->OnContact(Contact(2, 3, TimeInterval(1, 2)));
  EXPECT_TRUE((*ingestor)->status().IsInvalidArgument());
}

TEST(StreamingIngestor, ValidatesOptions) {
  StreamingOptions options;  // num_objects == 0.
  options.span = TimeInterval(0, 10);
  EXPECT_TRUE(StreamingIngestor::Create(options).status().IsInvalidArgument());
  options.num_objects = 5;
  options.seal_interval_ticks = 0;
  EXPECT_TRUE(StreamingIngestor::Create(options).status().IsInvalidArgument());
  options.seal_interval_ticks = 8;
  options.max_lateness_ticks = -1;
  EXPECT_TRUE(StreamingIngestor::Create(options).status().IsInvalidArgument());
  options.max_lateness_ticks = 0;
  EXPECT_TRUE(StreamingIngestor::Create(options).ok());
}

TEST(StreamingEngine, EngineOptionsBridgeAndCodecGuard) {
  QueryEngineOptions engine_options;
  engine_options.seal_interval_ticks = 32;
  engine_options.max_lateness_ticks = 7;
  engine_options.page_codec = PageCodecKind::kDeltaVarint;
  const StreamingOptions bridged =
      MakeStreamingOptions(kObjects, kSpan, engine_options);
  EXPECT_EQ(bridged.num_objects, kObjects);
  EXPECT_EQ(bridged.span, kSpan);
  EXPECT_EQ(bridged.seal_interval_ticks, 32);
  EXPECT_EQ(bridged.max_lateness_ticks, 7);
  EXPECT_EQ(bridged.build.page_codec, PageCodecKind::kDeltaVarint);
  // Unset knobs keep the streaming defaults.
  const StreamingOptions defaults =
      MakeStreamingOptions(kObjects, kSpan, QueryEngineOptions{});
  EXPECT_EQ(defaults.seal_interval_ticks, StreamingOptions{}.seal_interval_ticks);
  EXPECT_EQ(defaults.max_lateness_ticks, 0);

  // A streaming backend declares its codec, so the engine's
  // mis-declared-decode guard applies to the live tier too.
  const std::vector<Contact> contacts = MakeRandomContacts(23, 120);
  std::vector<Contact> canonical = contacts;
  SortBySinkOrder(&canonical);
  BuildSpec spec;
  spec.codec = PageCodecKind::kDeltaVarint;
  spec.seal_interval = 40;
  spec.label = "engine";
  auto ingestor = BuildIngestor(canonical, spec);
  auto backend = MakeStreamingBackend(ingestor);

  QueryEngineOptions mismatched;
  mismatched.page_codec = PageCodecKind::kRaw;
  const QueryEngine wrong(mismatched);
  const std::vector<ReachQuery> queries = MakeQueries(29, 20);
  EXPECT_TRUE(wrong.Run(backend.get(), queries).status().IsInvalidArgument());

  QueryEngineOptions matched;
  matched.page_codec = PageCodecKind::kDeltaVarint;
  matched.num_threads = 4;
  matched.io_queue_depth = 4;
  const QueryEngine engine(matched);
  auto report = engine.Run(backend.get(), queries);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ContactNetwork network(kObjects, kSpan, contacts);
  std::vector<ReachAnswer> oracle;
  for (const ReachQuery& q : queries) {
    oracle.push_back(
        BruteForceReach(network, q.source, q.destination, q.interval));
  }
  EXPECT_EQ(SerializeAnswers(report->answers), SerializeAnswers(oracle));

  // Closure workloads batch through the engine too.
  QueryEngineOptions closure_options = matched;
  closure_options.batch_sources = 3;
  const QueryEngine closures(closure_options);
  const std::vector<ObjectId> sources = {1, 4, 9, 16, 25, 36};
  const TimeInterval window(10, 150);
  auto closure_report =
      closures.RunClosures(backend.get(), sources, window);
  ASSERT_TRUE(closure_report.ok()) << closure_report.status().ToString();
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(closure_report->sets[i],
              BruteForceClosure(network, sources[i], window));
  }
}

TEST(StreamingSink, ExtractContactsToFeedsTheHeadDirectly) {
  RandomWaypointParams params;
  params.num_objects = 60;
  params.area = Rect(0, 0, 600, 400);
  params.duration = 80;
  params.seed = 99;
  auto store = GenerateRandomWaypoint(params);
  ASSERT_TRUE(store.ok());
  const double dt = 30.0;
  const std::vector<Contact> contacts = ExtractContacts(*store, dt);

  QueryEngineOptions engine_options;
  engine_options.seal_interval_ticks = 20;
  StreamingOptions options = MakeStreamingOptions(
      store->num_objects(), store->span(), engine_options);
  auto ingestor = StreamingIngestor::Create(options);
  ASSERT_TRUE(ingestor.ok());
  ExtractContactsTo(*store, dt, store->span(), JoinOptions{},
                    ingestor->get());
  ASSERT_TRUE((*ingestor)->status().ok())
      << (*ingestor)->status().ToString();
  EXPECT_EQ((*ingestor)->appended_contacts(), contacts.size());
  // Sink order is in-order by close tick, so the grid sealed as the
  // stream flowed — before any end-of-stream flush.
  EXPECT_GT((*ingestor)->sealed_segments(), 0u);

  const ContactNetwork network(store->num_objects(), store->span(),
                               contacts);
  auto index = MakeStreamingBackend(*ingestor);
  const TimeInterval window(0, 60);
  for (const ObjectId source : {0u, 11u, 37u, 59u}) {
    auto set = index->ReachableSet(source, window);
    ASSERT_TRUE(set.ok());
    EXPECT_EQ(*set, BruteForceClosure(network, source, window))
        << "source " << source;
  }
}

TEST(StreamingConcurrency, AppendsSealsAndQueriesRace) {
  std::vector<Contact> contacts = MakeRandomContacts(31, 400);
  const ContactNetwork network(kObjects, kSpan, contacts);
  std::vector<Contact> arrivals = contacts;
  SortBySinkOrder(&arrivals);

  StreamingOptions options;
  options.num_objects = kObjects;
  options.span = kSpan;
  options.seal_interval_ticks = 16;
  options.num_shards = 2;
  options.block_contacts = 16;
  options.build.page_codec = PageCodecKind::kDeltaVarint;
  auto created = StreamingIngestor::Create(options);
  ASSERT_TRUE(created.ok());
  std::shared_ptr<StreamingIngestor> ingestor = *created;

  std::atomic<bool> done{false};
  std::thread writer([&] {
    size_t n = 0;
    for (const Contact& c : arrivals) {
      EXPECT_TRUE(ingestor->Append(c).ok());
      if (++n % 37 == 0) EXPECT_TRUE(ingestor->Seal().ok());
    }
    done.store(true);
  });

  // Readers race the writer; they may see any prefix of the stream, so
  // only wellformedness is asserted here — exact answers come after the
  // writer joins.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      auto session = MakeStreamingBackend(ingestor);
      std::mt19937 rng(100 + static_cast<uint32_t>(r));
      std::uniform_int_distribution<ObjectId> object(0, kObjects - 1);
      while (!done.load()) {
        const ObjectId source = object(rng);
        auto set = session->ReachableSet(source, TimeInterval(0, 150));
        ASSERT_TRUE(set.ok()) << set.status().ToString();
        ASSERT_EQ(set->size(), kObjects);
        EXPECT_EQ((*set)[source], 0);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  ASSERT_TRUE(ingestor->SealRemaining().ok());

  auto index = MakeStreamingBackend(ingestor);
  const std::vector<ReachQuery> queries = MakeQueries(41, 40);
  std::vector<ReachAnswer> oracle;
  for (const ReachQuery& q : queries) {
    oracle.push_back(
        BruteForceReach(network, q.source, q.destination, q.interval));
  }
  EXPECT_EQ(SerializeAnswers(Answers(index.get(), queries)),
            SerializeAnswers(oracle));
}

}  // namespace
}  // namespace streach
