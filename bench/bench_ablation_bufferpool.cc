// Ablation B (disk-placement assumption): sensitivity of both indexes to
// the buffer-pool capacity ("internal memory" available to the query
// processor).
//
// Expectation: both indexes degrade gracefully as memory shrinks; the
// partition/cell buffering that the placement strategies rely on only
// needs a modest pool to pay off.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string index;
  size_t pool_pages;
  double io;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

BenchEnv& Env() {
  static BenchEnv env = MakeEnv("RWP", DatasetScale::kMedium,
                                /*duration=*/1000, /*num_queries=*/40);
  return env;
}

void GraphPool(benchmark::State& state) {
  const auto pool = static_cast<size_t>(state.range(0));
  BenchEnv& env = Env();
  ReachGraphOptions options;
  options.buffer_pool_pages = pool;
  auto index = ReachGraphIndex::Build(*env.network, options);
  STREACH_CHECK(index.ok());
  double io = 0;
  for (auto _ : state) {
    io = 0;
    for (const ReachQuery& q : env.queries) {
      (*index)->ClearCache();
      STREACH_CHECK_OK((*index)->QueryBmBfs(q).status());
      io += (*index)->last_query_stats().io_cost;
    }
    io /= static_cast<double>(env.queries.size());
  }
  state.counters["avg_io"] = io;
  Rows().push_back({"ReachGraph", pool, io});
}
BENCHMARK(GraphPool)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void GridPool(benchmark::State& state) {
  const auto pool = static_cast<size_t>(state.range(0));
  BenchEnv& env = Env();
  ReachGridOptions options;
  options.temporal_resolution = 20;
  options.spatial_cell_size = 1024.0;
  options.contact_range = env.dataset.contact_range;
  options.buffer_pool_pages = pool;
  auto index = ReachGridIndex::Build(env.dataset.store, options);
  STREACH_CHECK(index.ok());
  double io = 0;
  for (auto _ : state) {
    io = 0;
    for (const ReachQuery& q : env.queries) {
      (*index)->ClearCache();
      STREACH_CHECK_OK((*index)->Query(q).status());
      io += (*index)->last_query_stats().io_cost;
    }
    io /= static_cast<double>(env.queries.size());
  }
  state.counters["avg_io"] = io;
  Rows().push_back({"ReachGrid", pool, io});
}
BENCHMARK(GridPool)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Ablation — buffer-pool capacity sensitivity (RWP-M)",
      "graceful degradation; modest pools suffice for the placement win");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-12s %12s %10s\n", "Index", "pool pages", "avg IO");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-12s %12zu %10.1f\n", row.index.c_str(), row.pool_pages,
                row.io);
  }
  return 0;
}
