// Reproduces Figure 14 (a)/(b): ReachGrid vs ReachGraph (BM-BFS) query IO
// for query intervals of 100, 300 and 500 ticks on the mid-size RWP and
// VN datasets.
//
// Paper: ReachGrid is comparable with ReachGraph for small query
// intervals and falls behind as the interval grows (it sweeps contacts
// along time while ReachGraph jumps via precomputed long edges); on VN,
// where objects concentrate on the road network, ReachGraph wins by ~63%
// on average because ReachGrid's spatial grid cannot exploit locality in
// skewed distributions.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

struct Setup {
  BenchEnv env;
  std::unique_ptr<ReachGridIndex> grid;
  std::unique_ptr<ReachGraphIndex> graph;
};

Setup& GetSetup(const std::string& which) {
  static std::unordered_map<std::string, std::unique_ptr<Setup>> cache;
  auto it = cache.find(which);
  if (it == cache.end()) {
    auto setup = std::make_unique<Setup>();
    setup->env = MakeEnv(which, DatasetScale::kMedium, /*duration=*/1000,
                         /*num_queries=*/0);
    ReachGridOptions grid_options;
    grid_options.temporal_resolution = 20;
    grid_options.spatial_cell_size = which == "RWP" ? 1024.0 : 2500.0;
    grid_options.contact_range = setup->env.dataset.contact_range;
    auto grid = ReachGridIndex::Build(setup->env.dataset.store, grid_options);
    STREACH_CHECK(grid.ok());
    setup->grid = std::move(grid).ValueUnsafe();
    auto graph =
        ReachGraphIndex::Build(*setup->env.network, ReachGraphOptions{});
    STREACH_CHECK(graph.ok());
    setup->graph = std::move(graph).ValueUnsafe();
    it = cache.emplace(which, std::move(setup)).first;
  }
  return *it->second;
}

struct Row {
  std::string dataset;
  int interval;
  double grid_io;
  double graph_io;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Compare(benchmark::State& state, const std::string& which) {
  const int interval = static_cast<int>(state.range(0));
  Setup& setup = GetSetup(which);
  WorkloadParams wl;
  wl.num_queries = 40;
  wl.num_objects = setup.env.dataset.num_objects();
  wl.span = setup.env.dataset.span();
  wl.min_interval_len = interval;
  wl.max_interval_len = interval;
  wl.seed = 777;
  const auto queries = GenerateWorkload(wl);
  double grid_io = 0, graph_io = 0;
  for (auto _ : state) {
    grid_io = graph_io = 0;
    for (const ReachQuery& q : queries) {
      setup.grid->ClearCache();
      STREACH_CHECK_OK(setup.grid->Query(q).status());
      grid_io += setup.grid->last_query_stats().io_cost;
      setup.graph->ClearCache();
      STREACH_CHECK_OK(setup.graph->QueryBmBfs(q).status());
      graph_io += setup.graph->last_query_stats().io_cost;
    }
    grid_io /= static_cast<double>(queries.size());
    graph_io /= static_cast<double>(queries.size());
  }
  state.counters["grid_io"] = grid_io;
  state.counters["graph_io"] = graph_io;
  Rows().push_back({setup.env.dataset.name, interval, grid_io, graph_io});
}

BENCHMARK_CAPTURE(Compare, RWP_M, std::string("RWP"))
    ->Arg(100)->Arg(300)->Arg(500)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Compare, VN_M, std::string("VN"))
    ->Arg(100)->Arg(300)->Arg(500)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Figure 14 — ReachGrid vs ReachGraph IO, |Tp| in {100, 300, 500}",
      "comparable at small |Tp|; ReachGraph pulls ahead as |Tp| grows, "
      "especially on VN (~63%)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %6s %14s %14s %14s\n", "Dataset", "|Tp|",
              "ReachGrid IO", "ReachGraph IO", "graph wins by");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %6d %14.1f %14.1f %13.1f%%\n", row.dataset.c_str(),
                row.interval, row.grid_io, row.graph_io,
                streach::bench::ImprovementPct(row.graph_io, row.grid_io));
  }
  return 0;
}
