// Reproduces Figure 8 (a)/(b): ReachGrid query IO versus the spatial
// resolution RS (at the optimal temporal resolution RT=20) and versus the
// temporal resolution RT (at the optimal spatial resolution).
//
// Paper: both curves are U-shaped — too-fine resolutions cause many random
// accesses, too-coarse resolutions read many irrelevant trajectory
// segments. The optimum for RWP is RS=1024 m, RT=20.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

BenchEnv& Env() {
  static BenchEnv env = MakeEnv("RWP", DatasetScale::kSmall,
                                /*duration=*/1000, /*num_queries=*/50,
                                150, 350, /*build_network=*/false);
  return env;
}

struct Row {
  std::string label;
  double rs;
  int rt;
  double io;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

double MeasureGridIo(int rt, double rs) {
  BenchEnv& env = Env();
  ReachGridOptions options;
  options.temporal_resolution = rt;
  options.spatial_cell_size = rs;
  options.contact_range = env.dataset.contact_range;
  auto index = ReachGridIndex::Build(env.dataset.store, options);
  STREACH_CHECK(index.ok());
  double io = 0;
  for (const ReachQuery& q : env.queries) {
    (*index)->ClearCache();
    STREACH_CHECK_OK((*index)->Query(q).status());
    io += (*index)->last_query_stats().io_cost;
  }
  return io / static_cast<double>(env.queries.size());
}

void SpatialSweep(benchmark::State& state) {
  const double rs = static_cast<double>(state.range(0));
  double io = 0;
  for (auto _ : state) io = MeasureGridIo(/*rt=*/20, rs);
  state.counters["avg_io"] = io;
  Rows().push_back({"Fig8a RS sweep (RT=20)", rs, 20, io});
}
BENCHMARK(SpatialSweep)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void TemporalSweep(benchmark::State& state) {
  const int rt = static_cast<int>(state.range(0));
  double io = 0;
  for (auto _ : state) io = MeasureGridIo(rt, /*rs=*/1024.0);
  state.counters["avg_io"] = io;
  Rows().push_back({"Fig8b RT sweep (RS=1024)", 1024.0, rt, io});
}
BENCHMARK(TemporalSweep)
    ->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Figure 8 — ReachGrid resolution optimization (RWP)",
      "U-shaped IO curves; optimum RS=1024 m, RT=20 for RWP");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-26s %8s %5s %10s\n", "sweep", "RS (m)", "RT",
              "avg IO");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-26s %8.0f %5d %10.1f\n", row.label.c_str(), row.rs,
                row.rt, row.io);
  }
  return 0;
}
