// Fault-injection sweep: query success under transient read faults as a
// function of fault rate x retry budget, plus the checksum tax the
// integrity layer charges for detecting the faults it cannot mask.
//
// Not a paper experiment — the paper assumes healthy media; this charts
// the robustness tier (PR 10): every cell attaches a deterministic
// seeded FaultInjector to the sealed segments of one streaming build,
// runs the workload with a given `max_read_retries`, and records how
// many queries failed, how many injected faults the retry loop masked,
// and whether every successfully answered query still matches the
// fault-free reference. The fault_rate=0 rows double as the checksum
// overhead measurement CI gates on (per-blob footer bytes / payload
// bytes must stay under 5%). docs/BENCH_SCHEMA.md documents every field.
//
// Set STREACH_BENCH_TINY=1 to run a reduced dataset — the CI bench-smoke
// configuration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "storage/checksum.h"
#include "storage/fault_injector.h"
#include "stream/segmented_index.h"
#include "stream/streaming_ingestor.h"
#include "stream/streaming_options.h"

namespace streach {
namespace bench {
namespace {

// Every transient page fails this many attempts before healing, so a
// retry budget below it surfaces Unavailable and one at or above it
// masks the fault completely.
constexpr int kTransientFailures = 2;

bool TinyMode() {
  const char* tiny = std::getenv("STREACH_BENCH_TINY");
  return tiny != nullptr && tiny[0] != '\0' && tiny[0] != '0';
}

BenchEnv& Env() {
  static BenchEnv env =
      TinyMode() ? MakeEnv("RWP", DatasetScale::kSmall,
                           /*duration=*/300, /*num_queries=*/40,
                           /*min_interval=*/50, /*max_interval=*/200,
                           /*build_network=*/false)
                 : MakeEnv("RWP", DatasetScale::kMedium,
                           /*duration=*/1000, /*num_queries=*/200,
                           /*min_interval=*/150, /*max_interval=*/350,
                           /*build_network=*/false);
  return env;
}

StreamingOptions CellOptions() {
  StreamingOptions options;
  options.num_objects = Env().dataset.num_objects();
  options.span = Env().dataset.span();
  // Small pages so the sealed segments span enough distinct pages for
  // the per-page fault lottery to be a real sample, not 2-3 draws.
  options.page_size = 512;
  return options;
}

/// One streaming build shared by every cell: cells differ only in the
/// fault schedule attached at query time, never in the stored bytes.
const std::shared_ptr<StreamingIngestor>& Ingestor() {
  static const std::shared_ptr<StreamingIngestor> ingestor = [] {
    auto contacts =
        ExtractContacts(Env().dataset.store, Env().dataset.contact_range);
    // ContactSink emission order (runs grouped by close tick): the order
    // a real extraction would deliver, and the one the zero-lateness
    // watermark accepts.
    std::sort(contacts.begin(), contacts.end(),
              [](const Contact& x, const Contact& y) {
                return std::tie(x.validity.end, x.validity.start, x.a, x.b) <
                       std::tie(y.validity.end, y.validity.start, y.a, y.b);
              });
    auto result = StreamingIngestor::Create(CellOptions());
    STREACH_CHECK(result.ok());
    for (const Contact& c : contacts) {
      STREACH_CHECK((*result)->Append(c).ok());
    }
    STREACH_CHECK((*result)->SealRemaining().ok());
    return *result;
  }();
  return ingestor;
}

/// Workload answers with no injector attached: what every successfully
/// answered query must still return under faults.
const std::vector<ReachAnswer>& ReferenceAnswers() {
  static const std::vector<ReachAnswer>* answers = [] {
    auto backend = MakeStreamingBackend(Ingestor());
    auto report = QueryEngine().Run(backend.get(), Env().queries);
    STREACH_CHECK(report.ok());
    STREACH_CHECK(report->summary.failed_queries == 0);
    return new std::vector<ReachAnswer>(std::move(report->answers));
  }();
  return *answers;
}

struct Row {
  double fault_rate;
  int retries;
  uint64_t queries;
  uint64_t failed_queries;
  double success_rate;
  uint64_t transient_faults;
  uint64_t read_retries;
  bool ok_answers_match;
  uint64_t stored_bytes;
  uint64_t footer_bytes;
  uint64_t payload_bytes;
  double checksum_overhead;
  double query_seconds;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void FaultSweep(benchmark::State& state) {
  const double fault_rate = static_cast<double>(state.range(0)) / 1000.0;
  const int retries = static_cast<int>(state.range(1));

  FaultInjectorOptions fault_options;
  fault_options.seed = 20260808;
  fault_options.transient_rate = fault_rate;
  fault_options.transient_failures = kTransientFailures;
  FaultInjector injector(fault_options);

  const auto snapshot = Ingestor()->SnapshotFor(Env().dataset.span());
  uint64_t footer_bytes = 0;
  for (const auto& segment : snapshot.segments) {
    segment->topology().AttachFaultInjector(&injector);
    footer_bytes += segment->num_blocks() * kBlobChecksumBytes;
  }
  const uint64_t stored_bytes = Ingestor()->stored_bytes();
  const uint64_t payload_bytes = stored_bytes - footer_bytes;

  for (auto _ : state) {
    // Fresh backend per cell: cold buffer pools, so every cell pays the
    // same reads against the same deterministic fault schedule.
    auto backend = MakeStreamingBackend(Ingestor());
    QueryEngineOptions engine_options;
    engine_options.max_read_retries = retries;
    Stopwatch query_watch;
    auto report =
        QueryEngine(engine_options).Run(backend.get(), Env().queries);
    STREACH_CHECK(report.ok());
    const double query_seconds = query_watch.ElapsedSeconds();

    bool ok_answers_match = true;
    for (size_t i = 0; i < report->answers.size(); ++i) {
      if (!report->statuses[i].ok()) continue;
      if (report->answers[i].reachable != ReferenceAnswers()[i].reachable ||
          report->answers[i].arrival_time !=
              ReferenceAnswers()[i].arrival_time) {
        ok_answers_match = false;
      }
    }
    uint64_t read_retries = 0;
    for (const IoStats& s : backend->shard_io_stats()) {
      read_retries += s.read_retries;
    }
    const uint64_t queries = report->summary.num_queries;
    const uint64_t failed = report->summary.failed_queries;
    Rows().push_back(
        {fault_rate, retries, queries, failed,
         queries > 0
             ? static_cast<double>(queries - failed) / static_cast<double>(
                                                           queries)
             : 0.0,
         injector.transient_injected(), read_retries, ok_answers_match,
         stored_bytes, footer_bytes, payload_bytes,
         payload_bytes > 0 ? static_cast<double>(footer_bytes) /
                                 static_cast<double>(payload_bytes)
                           : 0.0,
         query_seconds});
  }

  for (const auto& segment : snapshot.segments) {
    segment->topology().AttachFaultInjector(nullptr);
  }
}

// rate: transient fault rate in thousandths (0 = healthy media);
// retries: BufferPool retry budget — kTransientFailures (2) per page, so
// 3 masks every transient and 0/1 surface some as Unavailable.
BENCHMARK(FaultSweep)
    ->ArgsProduct({{0, 100, 300}, {0, 1, 3}})
    ->ArgNames({"rate", "retries"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"fault_rate\": %.3f, \"retries\": %d, \"queries\": %llu, "
        "\"failed_queries\": %llu, \"success_rate\": %.4f, "
        "\"transient_faults\": %llu, \"read_retries\": %llu, "
        "\"ok_answers_match\": %s, \"stored_bytes\": %llu, "
        "\"footer_bytes\": %llu, \"payload_bytes\": %llu, "
        "\"checksum_overhead\": %.6f, \"query_seconds\": %.6f}%s\n",
        r.fault_rate, r.retries, static_cast<unsigned long long>(r.queries),
        static_cast<unsigned long long>(r.failed_queries), r.success_rate,
        static_cast<unsigned long long>(r.transient_faults),
        static_cast<unsigned long long>(r.read_retries),
        r.ok_answers_match ? "true" : "false",
        static_cast<unsigned long long>(r.stored_bytes),
        static_cast<unsigned long long>(r.footer_bytes),
        static_cast<unsigned long long>(r.payload_bytes),
        r.checksum_overhead, r.query_seconds,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

void PrintFaultTable() {
  std::printf("\n%-6s %8s %8s %7s %8s %8s %8s %6s %10s\n", "Rate",
              "Retries", "Queries", "Failed", "Faults", "Reissue", "match",
              "tax%", "query(ms)");
  for (const Row& r : Rows()) {
    std::printf("%-6.2f %8d %8llu %7llu %8llu %8llu %8s %6.2f %10.2f\n",
                r.fault_rate, r.retries,
                static_cast<unsigned long long>(r.queries),
                static_cast<unsigned long long>(r.failed_queries),
                static_cast<unsigned long long>(r.transient_faults),
                static_cast<unsigned long long>(r.read_retries),
                r.ok_answers_match ? "yes" : "NO",
                r.checksum_overhead * 100.0, r.query_seconds * 1e3);
  }
  WriteJson("BENCH_fault_injection.json");
  std::printf("Wrote BENCH_fault_injection.json (%zu cells)\n",
              Rows().size());
}

}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Fault injection — query success and retry masking under transient "
      "read-fault rate x retry budget, plus per-blob checksum overhead",
      "(beyond the paper) a bounded retry budget masks transient storage "
      "faults completely, surfaced faults fail only their own query, and "
      "the integrity footers cost well under 5% of stored bytes");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  streach::bench::PrintFaultTable();
  return 0;
}
