// Engine scaling sweep: throughput of the disk-resident backends under
// num_threads x num_shards, through the concurrent QueryEngine.
//
// Not a paper experiment — this charts the perf trajectory of the
// production engine: per-thread buffer-pool sessions over a shared
// immutable index (PR 1) plus the sharded storage topology (this PR).
// Each (threads, shards) cell runs the same warm workload; results land
// in BENCH_engine_scaling.json for trend tracking. Thread scaling is
// wall-clock: on a single-core host the threads axis is flat (the
// workload is compute-bound once the simulated disk is in memory) —
// run on a multi-core box to see the parallel speedup.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

constexpr Timestamp kDuration = 1000;
constexpr int kNumQueries = 400;

BenchEnv& Env() {
  static BenchEnv env = MakeEnv("RWP", DatasetScale::kMedium, kDuration,
                                kNumQueries, /*min_interval=*/100,
                                /*max_interval=*/300);
  return env;
}

std::shared_ptr<const ReachGridIndex> GridIndex(int shards) {
  static std::map<int, std::shared_ptr<const ReachGridIndex>> cache;
  auto it = cache.find(shards);
  if (it == cache.end()) {
    ReachGridOptions options;
    options.temporal_resolution = 20;
    options.spatial_cell_size = 1024.0;
    options.contact_range = Env().dataset.contact_range;
    options.num_shards = shards;
    auto index = ReachGridIndex::Build(Env().dataset.store, options);
    STREACH_CHECK(index.ok());
    it = cache.emplace(shards, std::move(index).ValueUnsafe()).first;
  }
  return it->second;
}

std::shared_ptr<const ReachGraphIndex> GraphIndex(int shards) {
  static std::map<int, std::shared_ptr<const ReachGraphIndex>> cache;
  auto it = cache.find(shards);
  if (it == cache.end()) {
    ReachGraphOptions options;
    options.num_shards = shards;
    auto index = ReachGraphIndex::Build(*Env().network, options);
    STREACH_CHECK(index.ok());
    it = cache.emplace(shards, std::move(index).ValueUnsafe()).first;
  }
  return it->second;
}

struct Row {
  std::string backend;
  int threads;
  int shards;
  double qps;
  double mean_io;
  double p95_us;
  double p99_us;
  double pool_hit_rate;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void RunCell(benchmark::State& state, const std::string& name,
             std::unique_ptr<ReachabilityIndex> backend) {
  const int threads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  WorkloadSummary summary;
  for (auto _ : state) {
    // Warm cache: the scaling story is parallel serving over a shared
    // immutable index, not the paper's cold per-query IO protocol.
    summary = RunThroughEngine(backend.get(), Env().queries, /*cold=*/false,
                               threads);
  }
  state.counters["qps"] = summary.queries_per_second;
  state.counters["io_per_query"] = summary.mean_io_cost();
  state.counters["p99_us"] = summary.p99_latency * 1e6;
  Rows().push_back({name, threads, shards, summary.queries_per_second,
                    summary.mean_io_cost(), summary.p95_latency * 1e6,
                    summary.p99_latency * 1e6, summary.pool_hit_rate()});
}

void GridScaling(benchmark::State& state) {
  RunCell(state, "ReachGrid",
          MakeReachGridBackend(GridIndex(static_cast<int>(state.range(1)))));
}

void GraphScaling(benchmark::State& state) {
  RunCell(state, "ReachGraph(BM-BFS)",
          MakeReachGraphBackend(GraphIndex(static_cast<int>(state.range(1))),
                                ReachGraphTraversal::kBmBfs));
}

BENCHMARK(GridScaling)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 2, 4}})
    ->ArgNames({"threads", "shards"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(GraphScaling)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 2, 4}})
    ->ArgNames({"threads", "shards"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"backend\": \"%s\", \"threads\": %d, \"shards\": %d, "
                 "\"qps\": %.1f, \"io_per_query\": %.2f, \"p95_us\": %.1f, "
                 "\"p99_us\": %.1f, \"pool_hit_rate\": %.4f}%s\n",
                 r.backend.c_str(), r.threads, r.shards, r.qps, r.mean_io,
                 r.p95_us, r.p99_us, r.pool_hit_rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

void PrintScalingTable() {
  std::printf("\n%-20s %8s %7s %10s %12s %10s %10s\n", "Backend", "Threads",
              "Shards", "q/s", "io/query", "p99(us)", "hit-rate");
  double best_multi = 0, best_single = 0;
  for (const Row& r : Rows()) {
    std::printf("%-20s %8d %7d %10.0f %12.2f %10.0f %9.1f%%\n",
                r.backend.c_str(), r.threads, r.shards, r.qps, r.mean_io,
                r.p99_us, 100.0 * r.pool_hit_rate);
    if (r.threads == 1) {
      if (r.qps > best_single) best_single = r.qps;
    } else if (r.qps > best_multi) {
      best_multi = r.qps;
    }
  }
  if (best_single > 0) {
    std::printf("\nBest multi-thread over best single-thread: %.2fx\n",
                best_multi / best_single);
  }
  WriteJson("BENCH_engine_scaling.json");
  std::printf("Wrote BENCH_engine_scaling.json (%zu cells)\n", Rows().size());
}

}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Engine scaling — throughput under num_threads x num_shards",
      "(beyond the paper) multi-thread throughput exceeds single-thread "
      "for the disk-resident backends");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  streach::bench::PrintScalingTable();
  return 0;
}
