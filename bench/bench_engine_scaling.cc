// Engine scaling sweep: throughput of the disk-resident backends under
// num_threads x num_shards x io_queue_depth x page_codec, through the
// concurrent QueryEngine — plus the closure-side axes: traversal_threads
// (intra-query parallel frontier, PR 6) and batch_sources (multi-source
// shared-frontier closure, PR 6). The closure cells run RunClosures over
// a fixed seed set: the traversal_threads axis charts one sweep's
// frontier parallelism, the batch_sources axis charts the read dedup of
// evaluating many seeds in one sweep (reads_per_source drops as the
// batch grows; answers never change on either axis).
//
// Not a paper experiment — this charts the perf trajectory of the
// production engine: per-thread buffer-pool sessions over a shared
// immutable index (PR 1), the sharded storage topology (PR 2), the
// batched async read path (PR 3), the parallel batched-write build
// path (PR 4 — indexes here are built with one worker per shard and
// deep write queues; each row carries its index's build wall time and
// write profile), and the compressed page codec (PR 5 — the codec axis
// contrasts the raw on-disk format against delta-varint records, whose
// build-side compression ratio and query-side read counts each row
// reports). Each cell runs the same warm workload; results land in
// BENCH_engine_scaling.json for trend tracking — docs/BENCH_SCHEMA.md
// documents every field. Thread
// scaling is wall-clock: on a single-core host the threads axis is flat
// (the workload is compute-bound once the simulated disk is in memory) —
// run on a multi-core box to see the parallel speedup. The depth axis is
// about the simulated IO cost model: at depth 8 the per-shard submission
// queues overlap and reorder a step's reads (mean_inflight > 1), which
// is what the `inflight` column certifies.
//
// Set STREACH_BENCH_TINY=1 to run a reduced dataset/workload — the CI
// bench-smoke configuration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>
#include <utility>

#include "bench_common.h"
#include "baselines/spj.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"
#include "storage/page_codec.h"

namespace streach {
namespace bench {
namespace {

bool TinyMode() {
  const char* tiny = std::getenv("STREACH_BENCH_TINY");
  return tiny != nullptr && tiny[0] != '\0' && tiny[0] != '0';
}

BenchEnv& Env() {
  static BenchEnv env = TinyMode()
                            ? MakeEnv("RWP", DatasetScale::kSmall,
                                      /*duration=*/300, /*num_queries=*/60,
                                      /*min_interval=*/50,
                                      /*max_interval=*/150)
                            : MakeEnv("RWP", DatasetScale::kMedium,
                                      /*duration=*/1000, /*num_queries=*/400,
                                      /*min_interval=*/100,
                                      /*max_interval=*/300);
  return env;
}

/// Construction-side metrics of one (backend, shards) index build: wall
/// time plus the write profile of the batched build path the indexes are
/// built with here (deep write queues, one worker per shard).
struct BuildProfile {
  double seconds = 0.0;
  uint64_t pages_written = 0;
  uint64_t batched_writes = 0;
  double mean_write_inflight = 0.0;
  // Codec profile of the build: stored vs raw record bytes.
  uint64_t encoded_bytes = 0;
  uint64_t decoded_bytes = 0;
  double compression_ratio = 1.0;
};
/// Keyed by (backend, shards, codec) — the index a cell queries.
using BuildKey = std::tuple<std::string, int, int>;
std::map<BuildKey, BuildProfile>& BuildProfiles() {
  static std::map<BuildKey, BuildProfile> profiles;
  return profiles;
}

BuildProfile ProfileOf(double seconds, const std::vector<IoStats>& build_io) {
  BuildProfile profile;
  profile.seconds = seconds;
  IoStats total;
  for (const IoStats& shard : build_io) total += shard;
  profile.pages_written = total.total_writes();
  profile.batched_writes = total.batched_writes;
  profile.mean_write_inflight = total.mean_write_inflight();
  profile.encoded_bytes = total.encoded_bytes;
  profile.decoded_bytes = total.decoded_bytes;
  profile.compression_ratio = total.compression_ratio();
  return profile;
}

PageCodecKind CodecOf(int axis) {
  return axis == 0 ? PageCodecKind::kRaw : PageCodecKind::kDeltaVarint;
}

/// Builds here exercise the write-side queue model: one build worker per
/// shard, 8 pages in flight per shard write queue. The on-disk images
/// (and all answers) are identical to the synchronous defaults.
BuildOptions BenchBuildOptions(int codec) {
  BuildOptions build;
  build.build_workers = 0;
  build.write_queue_depth = 8;
  build.page_codec = CodecOf(codec);
  return build;
}

std::shared_ptr<const ReachGridIndex> GridIndex(int shards, int codec) {
  static std::map<std::pair<int, int>,
                  std::shared_ptr<const ReachGridIndex>> cache;
  auto it = cache.find({shards, codec});
  if (it == cache.end()) {
    ReachGridOptions options;
    options.temporal_resolution = 20;
    options.spatial_cell_size = 1024.0;
    options.contact_range = Env().dataset.contact_range;
    options.num_shards = shards;
    options.build = BenchBuildOptions(codec);
    auto index = ReachGridIndex::Build(Env().dataset.store, options);
    STREACH_CHECK(index.ok());
    it = cache.emplace(std::make_pair(shards, codec),
                       std::move(index).ValueUnsafe()).first;
    BuildProfiles()[{"ReachGrid", shards, codec}] =
        ProfileOf(it->second->build_stats().build_seconds,
                  it->second->build_io_stats());
  }
  return it->second;
}

std::shared_ptr<const ReachGraphIndex> GraphIndex(int shards, int codec) {
  static std::map<std::pair<int, int>,
                  std::shared_ptr<const ReachGraphIndex>> cache;
  auto it = cache.find({shards, codec});
  if (it == cache.end()) {
    ReachGraphOptions options;
    options.num_shards = shards;
    options.build = BenchBuildOptions(codec);
    auto index = ReachGraphIndex::Build(*Env().network, options);
    STREACH_CHECK(index.ok());
    it = cache.emplace(std::make_pair(shards, codec),
                       std::move(index).ValueUnsafe()).first;
    const ReachGraphBuildStats& stats = it->second->build_stats();
    BuildProfiles()[{"ReachGraph(BM-BFS)", shards, codec}] =
        ProfileOf(stats.reduction_seconds + stats.augmentation_seconds +
                      stats.placement_seconds,
                  it->second->build_io_stats());
  }
  return it->second;
}

std::shared_ptr<const SpjEvaluator> SpjIndex(int shards, int codec) {
  static std::map<std::pair<int, int>,
                  std::shared_ptr<const SpjEvaluator>> cache;
  auto it = cache.find({shards, codec});
  if (it == cache.end()) {
    SpjOptions options;
    options.contact_range = Env().dataset.contact_range;
    options.num_shards = shards;
    options.build = BenchBuildOptions(codec);
    auto spj = SpjEvaluator::Build(Env().dataset.store, options);
    STREACH_CHECK(spj.ok());
    it = cache.emplace(std::make_pair(shards, codec),
                       std::move(spj).ValueUnsafe()).first;
    BuildProfiles()[{"SPJ(scan-join)", shards, codec}] =
        ProfileOf(it->second->build_seconds(), it->second->build_io_stats());
  }
  return it->second;
}

struct Row {
  std::string backend;
  int threads;
  int shards;
  int depth;
  std::string codec;
  // Closure axes (1/1 on the point-query cells): frontier workers inside
  // one sweep, and seeds per shared-frontier batch.
  int traversal_threads;
  int batch_sources;
  double qps;
  double mean_io;
  uint64_t total_reads;
  // total_reads amortized over the workload's queries (sources, for the
  // closure cells) — the dedup metric the batch_sources axis moves.
  double reads_per_source;
  double p95_us;
  double p99_us;
  double pool_hit_rate;
  double mean_inflight;
  uint64_t batched_reads;
  // Construction-side metrics of the (backend, shards, codec) index this
  // cell queried — identical across the cell's threads/depth settings.
  BuildProfile build;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void RunCell(benchmark::State& state, const std::string& name,
             std::unique_ptr<ReachabilityIndex> backend) {
  const int threads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const int depth = static_cast<int>(state.range(2));
  const int codec = static_cast<int>(state.range(3));
  WorkloadSummary summary;
  for (auto _ : state) {
    // Warm cache: the scaling story is parallel serving over a shared
    // immutable index, not the paper's cold per-query IO protocol.
    summary = RunThroughEngine(backend.get(), Env().queries, /*cold=*/false,
                               threads, depth, CodecOf(codec));
  }
  state.counters["qps"] = summary.queries_per_second;
  state.counters["io_per_query"] = summary.mean_io_cost();
  state.counters["p99_us"] = summary.p99_latency * 1e6;
  state.counters["inflight"] = summary.mean_inflight_requests();
  const double per_source =
      summary.num_queries == 0
          ? 0.0
          : static_cast<double>(summary.total_pages_fetched) /
                static_cast<double>(summary.num_queries);
  Rows().push_back({name, threads, shards, depth,
                    ToString(CodecOf(codec)),
                    /*traversal_threads=*/1, /*batch_sources=*/1,
                    summary.queries_per_second, summary.mean_io_cost(),
                    summary.total_pages_fetched, per_source,
                    summary.p95_latency * 1e6, summary.p99_latency * 1e6,
                    summary.pool_hit_rate(),
                    summary.mean_inflight_requests(),
                    summary.total_batched_reads(),
                    BuildProfiles()[{name, shards, codec}]});
}

/// The closure workload: a fixed, deterministic seed set spread across
/// the population, traced over the first quarter of the span.
std::vector<ObjectId> ClosureSources() {
  const size_t num_objects = Env().dataset.num_objects();
  const size_t stride = std::max<size_t>(1, num_objects / 16);
  std::vector<ObjectId> sources;
  for (size_t i = 0; i < 16 && i * stride < num_objects; ++i) {
    sources.push_back(static_cast<ObjectId>(i * stride));
  }
  return sources;
}

TimeInterval ClosureWindow() {
  const TimeInterval span = Env().dataset.span();
  return TimeInterval(span.start, span.start + span.length() / 4);
}

/// One closure cell: RunClosures over the fixed seeds, cold per batch.
/// `built_as` names the BuildProfiles entry of the underlying index (the
/// closure cells query the same indexes the point cells do).
void RunClosureCell(benchmark::State& state, const std::string& name,
                    const std::string& built_as,
                    std::unique_ptr<ReachabilityIndex> backend) {
  const int tthreads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const int batch = static_cast<int>(state.range(2));
  const int codec = static_cast<int>(state.range(3));
  BuildProfiles()[{name, shards, codec}] =
      BuildProfiles()[{built_as, shards, codec}];
  QueryEngineOptions options;
  options.num_threads = 1;
  options.cold_cache = true;  // Dedup WITHIN a batch is the whole story.
  options.page_codec = CodecOf(codec);
  options.traversal_threads = tthreads;
  options.batch_sources = batch;
  const QueryEngine engine(options);
  const std::vector<ObjectId> sources = ClosureSources();
  WorkloadSummary summary;
  for (auto _ : state) {
    auto report =
        engine.RunClosures(backend.get(), sources, ClosureWindow());
    STREACH_CHECK(report.ok());
    summary = std::move(report->summary);
  }
  const double per_source =
      static_cast<double>(summary.total_pages_fetched) /
      static_cast<double>(sources.size());
  state.counters["closures_per_sec"] = summary.queries_per_second;
  state.counters["reads_per_source"] = per_source;
  Rows().push_back({name, /*threads=*/1, shards, /*depth=*/1,
                    ToString(CodecOf(codec)), tthreads, batch,
                    summary.queries_per_second, summary.mean_io_cost(),
                    summary.total_pages_fetched, per_source,
                    summary.p95_latency * 1e6, summary.p99_latency * 1e6,
                    summary.pool_hit_rate(),
                    summary.mean_inflight_requests(),
                    summary.total_batched_reads(),
                    BuildProfiles()[{name, shards, codec}]});
}

void GridScaling(benchmark::State& state) {
  RunCell(state, "ReachGrid",
          MakeReachGridBackend(GridIndex(static_cast<int>(state.range(1)),
                                         static_cast<int>(state.range(3)))));
}

void GraphScaling(benchmark::State& state) {
  RunCell(state, "ReachGraph(BM-BFS)",
          MakeReachGraphBackend(GraphIndex(static_cast<int>(state.range(1)),
                                           static_cast<int>(state.range(3))),
                                ReachGraphTraversal::kBmBfs));
}

void SpjScaling(benchmark::State& state) {
  RunCell(state, "SPJ(scan-join)",
          MakeSpjBackend(SpjIndex(static_cast<int>(state.range(1)),
                                  static_cast<int>(state.range(3)))));
}

BENCHMARK(GridScaling)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 2, 4}, {1, 8}, {0, 1}})
    ->ArgNames({"threads", "shards", "depth", "codec"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(GraphScaling)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 2, 4}, {1, 8}, {0, 1}})
    ->ArgNames({"threads", "shards", "depth", "codec"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
// SPJ scans every overlapping slab per query, so its sweep is smaller:
// the codec story (compressed slabs -> strictly fewer reads) needs only
// a thread/shard corner, not the full grid.
BENCHMARK(SpjScaling)
    ->ArgsProduct({{1, 4}, {1, 4}, {1, 8}, {0, 1}})
    ->ArgNames({"threads", "shards", "depth", "codec"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---- Closure cells (PR 6): traversal_threads and batch_sources axes.

void GridClosureScaling(benchmark::State& state) {
  RunClosureCell(
      state, "ReachGrid(closure)", "ReachGrid",
      MakeReachGridBackend(GridIndex(static_cast<int>(state.range(1)),
                                     static_cast<int>(state.range(3)))));
}

void GridMultiSource(benchmark::State& state) {
  RunClosureCell(
      state, "ReachGrid(multi-source)", "ReachGrid",
      MakeReachGridBackend(GridIndex(static_cast<int>(state.range(1)),
                                     static_cast<int>(state.range(3)))));
}

void GraphMultiSource(benchmark::State& state) {
  RunClosureCell(
      state, "ReachGraph(multi-source)", "ReachGraph(BM-BFS)",
      MakeReachGraphBackend(GraphIndex(static_cast<int>(state.range(1)),
                                       static_cast<int>(state.range(3))),
                            ReachGraphTraversal::kBmBfs));
}

void SpjMultiSource(benchmark::State& state) {
  RunClosureCell(
      state, "SPJ(multi-source)", "SPJ(scan-join)",
      MakeSpjBackend(SpjIndex(static_cast<int>(state.range(1)),
                              static_cast<int>(state.range(3)))));
}

// Intra-query frontier scaling: single-source batches, 1..4 frontier
// workers per sweep.
BENCHMARK(GridClosureScaling)
    ->ArgsProduct({{1, 2, 4}, {1}, {1}, {0}})
    ->ArgNames({"tthreads", "shards", "batch", "codec"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
// Multi-source read dedup: one thread, growing shared-frontier batches.
BENCHMARK(GridMultiSource)
    ->ArgsProduct({{1}, {1}, {1, 2, 4, 8}, {0}})
    ->ArgNames({"tthreads", "shards", "batch", "codec"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(GraphMultiSource)
    ->ArgsProduct({{1}, {1}, {1, 2, 4, 8}, {0}})
    ->ArgNames({"tthreads", "shards", "batch", "codec"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(SpjMultiSource)
    ->ArgsProduct({{1}, {1}, {1, 2, 4, 8}, {0}})
    ->ArgNames({"tthreads", "shards", "batch", "codec"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"backend\": \"%s\", \"threads\": %d, \"shards\": %d, "
        "\"depth\": %d, \"codec\": \"%s\", \"traversal_threads\": %d, "
        "\"batch_sources\": %d, \"qps\": %.1f, "
        "\"io_per_query\": %.2f, \"total_reads\": %llu, "
        "\"reads_per_source\": %.2f, "
        "\"p95_us\": %.1f, \"p99_us\": %.1f, \"pool_hit_rate\": %.4f, "
        "\"mean_inflight\": %.3f, \"batched_reads\": %llu, "
        "\"build_seconds\": %.6f, \"build_pages_written\": %llu, "
        "\"build_batched_writes\": %llu, "
        "\"build_mean_write_inflight\": %.3f, "
        "\"encoded_bytes\": %llu, \"decoded_bytes\": %llu, "
        "\"compression_ratio\": %.3f}%s\n",
        r.backend.c_str(), r.threads, r.shards, r.depth, r.codec.c_str(),
        r.traversal_threads, r.batch_sources,
        r.qps, r.mean_io,
        static_cast<unsigned long long>(r.total_reads),
        r.reads_per_source,
        r.p95_us, r.p99_us, r.pool_hit_rate, r.mean_inflight,
        static_cast<unsigned long long>(r.batched_reads),
        r.build.seconds,
        static_cast<unsigned long long>(r.build.pages_written),
        static_cast<unsigned long long>(r.build.batched_writes),
        r.build.mean_write_inflight,
        static_cast<unsigned long long>(r.build.encoded_bytes),
        static_cast<unsigned long long>(r.build.decoded_bytes),
        r.build.compression_ratio,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

void PrintScalingTable() {
  std::printf(
      "\n%-24s %8s %7s %6s %-13s %5s %6s %10s %12s %10s %10s %9s %8s\n",
      "Backend", "Threads", "Shards", "Depth", "Codec", "tthr", "batch",
      "q/s", "io/query", "p99(us)", "hit-rate", "inflight", "reads/src");
  double best_multi = 0, best_single = 0;
  for (const Row& r : Rows()) {
    std::printf(
        "%-24s %8d %7d %6d %-13s %5d %6d %10.0f %12.2f %10.0f %9.1f%% "
        "%9.2f %9.2f\n",
        r.backend.c_str(), r.threads, r.shards, r.depth, r.codec.c_str(),
        r.traversal_threads, r.batch_sources,
        r.qps, r.mean_io, r.p99_us, 100.0 * r.pool_hit_rate,
        r.mean_inflight, r.reads_per_source);
    if (r.traversal_threads > 1 || r.batch_sources > 1) continue;
    if (r.threads == 1) {
      if (r.qps > best_single) best_single = r.qps;
    } else if (r.qps > best_multi) {
      best_multi = r.qps;
    }
  }
  if (best_single > 0) {
    std::printf("\nBest multi-thread over best single-thread: %.2fx\n",
                best_multi / best_single);
  }
  std::printf("\nIndex builds (one worker per shard, write queue depth 8):\n");
  for (const auto& [key, build] : BuildProfiles()) {
    std::printf(
        "  %-20s shards=%d codec=%-13s %8.2f ms, %6llu pages, "
        "%6llu batched, write inflight %.2f, compression %.2fx\n",
        std::get<0>(key).c_str(), std::get<1>(key),
        ToString(CodecOf(std::get<2>(key))), build.seconds * 1e3,
        static_cast<unsigned long long>(build.pages_written),
        static_cast<unsigned long long>(build.batched_writes),
        build.mean_write_inflight, build.compression_ratio);
  }
  WriteJson("BENCH_engine_scaling.json");
  std::printf("Wrote BENCH_engine_scaling.json (%zu cells)\n", Rows().size());
}

}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Engine scaling — throughput under num_threads x num_shards x "
      "io_queue_depth x page_codec",
      "(beyond the paper) multi-thread throughput exceeds single-thread "
      "for the disk-resident backends; depth-8 submission queues overlap "
      "per-shard reads (mean inflight > 1); delta-varint records "
      "compress >1.5x and strictly cut page reads");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  streach::bench::PrintScalingTable();
  return 0;
}
