// Reproduces Figure 12: ReachGraph query IO versus the partitioning depth
// dp for the mid-size RWP and VN datasets.
//
// Paper: a U-shaped tradeoff — deeper partitions buffer more
// soon-to-be-visited vertices (fewer IOs) until partitions become so large
// that fetching one drags in mostly redundant vertices; their optimum is
// dp = 32 with 20k-object datasets.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/augmenter.h"
#include "reachgraph/dn_builder.h"
#include "reachgraph/reach_graph_index.h"

namespace streach {
namespace bench {
namespace {

struct Sweep {
  BenchEnv env;
  DnGraph dn;  // Pre-augmented; copied per depth.
};

Sweep& GetSweep(const std::string& which) {
  static std::unordered_map<std::string, std::unique_ptr<Sweep>> cache;
  auto it = cache.find(which);
  if (it == cache.end()) {
    BenchEnv env = MakeEnv(which, DatasetScale::kMedium, /*duration=*/1000,
                           /*num_queries=*/40);
    auto dn = BuildDnGraph(*env.network);
    STREACH_CHECK(dn.ok());
    AugmenterOptions aug;
    aug.num_resolutions = 6;
    STREACH_CHECK_OK(AugmentWithLongEdges(&*dn, aug));
    auto sweep = std::make_unique<Sweep>(
        Sweep{std::move(env), std::move(*dn)});
    it = cache.emplace(which, std::move(sweep)).first;
  }
  return *it->second;
}

struct Row {
  std::string dataset;
  int depth;
  double io;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void DepthSweep(benchmark::State& state, const std::string& which) {
  const int dp = static_cast<int>(state.range(0));
  Sweep& sweep = GetSweep(which);
  ReachGraphOptions options;
  options.partition_depth = dp;
  auto index = ReachGraphIndex::BuildFromDn(sweep.dn, options);
  STREACH_CHECK(index.ok());
  double io = 0;
  for (auto _ : state) {
    io = 0;
    for (const ReachQuery& q : sweep.env.queries) {
      (*index)->ClearCache();
      STREACH_CHECK_OK((*index)->QueryBmBfs(q).status());
      io += (*index)->last_query_stats().io_cost;
    }
    io /= static_cast<double>(sweep.env.queries.size());
  }
  state.counters["avg_io"] = io;
  state.counters["partitions"] =
      static_cast<double>((*index)->num_partitions());
  Rows().push_back({sweep.env.dataset.name, dp, io});
}

BENCHMARK_CAPTURE(DepthSweep, RWP_M, std::string("RWP"))
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(DepthSweep, VN_M, std::string("VN"))
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Figure 12 — query IO vs partition depth dp (RWP-M, VN-M)",
      "U-shaped curve with an interior optimum (paper: dp=32 at 20k objects)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %6s %10s\n", "Dataset", "dp", "avg IO");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %6d %10.1f\n", row.dataset.c_str(), row.depth, row.io);
  }
  return 0;
}
