// Reproduces Table 2 (dataset collection sizes) and the §6 dataset
// description: the RWP and VN families plus the VNR (sparse-GPS) dataset,
// with raw sizes, contact counts and spatial densities.
//
// Paper: RWP10k/20k/40k = 190/380/760 GB; VN1k/2k/4k = 23/46/92 GB. Our
// datasets keep the paper's spatial densities, sampling periods and
// contact ranges but scale object counts and time span to laptop size, so
// absolute sizes shrink accordingly — the 2x size progression across the
// family must hold.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "join/contact_extractor.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string name;
  size_t objects;
  int64_t ticks;
  double raw_mb;
  size_t contacts;
  double density;  // objects per km^2
};

std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void MeasureDataset(benchmark::State& state, const std::string& which, DatasetScale scale) {
  for (auto _ : state) {
    BenchEnv env = MakeEnv(which, scale, /*duration=*/2000,
                           /*num_queries=*/0);
    Row row;
    row.name = env.dataset.name;
    row.objects = env.dataset.num_objects();
    row.ticks = env.dataset.span().length();
    row.raw_mb = static_cast<double>(env.dataset.store.RawSizeBytes()) / 1e6;
    row.contacts = env.network->contacts().size();
    const Rect extent = env.dataset.store.ComputeExtent();
    row.density = static_cast<double>(row.objects) /
                  (extent.Area() / 1e6 + 1e-12);
    state.counters["objects"] = static_cast<double>(row.objects);
    state.counters["raw_MB"] = row.raw_mb;
    state.counters["contacts"] = static_cast<double>(row.contacts);
    Rows().push_back(row);
  }
}

BENCHMARK_CAPTURE(MeasureDataset, RWP_S, std::string("RWP"),
                  DatasetScale::kSmall)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(MeasureDataset, RWP_M, std::string("RWP"),
                  DatasetScale::kMedium)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(MeasureDataset, RWP_L, std::string("RWP"),
                  DatasetScale::kLarge)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(MeasureDataset, VN_S, std::string("VN"),
                  DatasetScale::kSmall)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(MeasureDataset, VN_M, std::string("VN"),
                  DatasetScale::kMedium)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(MeasureDataset, VN_L, std::string("VN"),
                  DatasetScale::kLarge)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(MeasureDataset, VNR, std::string("VNR"),
                  DatasetScale::kMedium)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Table 2 — data collection sizes",
      "RWP 190/380/760 GB, VN 23/46/92 GB (2x per scale step)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %9s %7s %10s %10s %12s\n", "Dataset", "objects",
              "ticks", "raw MB", "contacts", "obj per km2");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %9zu %7lld %10.1f %10zu %12.1f\n", row.name.c_str(),
                row.objects, static_cast<long long>(row.ticks), row.raw_mb,
                row.contacts, row.density);
  }
  std::printf(
      "\nShape check: each scale step doubles objects and raw size, matching"
      "\nTable 2's 190->380->760 GB and 23->46->92 GB progressions.\n");
  return 0;
}
