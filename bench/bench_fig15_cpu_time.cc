// Reproduces Figure 15: CPU time (processing time excluding simulated
// disk transfers) of ReachGrid vs ReachGraph query processing.
//
// Paper: ReachGraph has significantly lower CPU time "because of extensive
// offline precalculations and hence avoiding spatiotemporal joins at the
// query time".

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

struct Setup {
  BenchEnv env;
  // Both indexes behind the uniform backend interface: the benchmark
  // body is index-agnostic from here on.
  std::unique_ptr<ReachabilityIndex> grid;
  std::unique_ptr<ReachabilityIndex> graph;
};

Setup& GetSetup(const std::string& which) {
  static std::unordered_map<std::string, std::unique_ptr<Setup>> cache;
  auto it = cache.find(which);
  if (it == cache.end()) {
    auto setup = std::make_unique<Setup>();
    setup->env = MakeEnv(which, DatasetScale::kMedium, /*duration=*/1000,
                         /*num_queries=*/40);
    ReachGridOptions grid_options;
    grid_options.temporal_resolution = 20;
    grid_options.spatial_cell_size = which == "RWP" ? 1024.0 : 2500.0;
    grid_options.contact_range = setup->env.dataset.contact_range;
    auto grid = ReachGridIndex::Build(setup->env.dataset.store, grid_options);
    STREACH_CHECK(grid.ok());
    setup->grid =
        MakeReachGridBackend(std::move(grid).ValueUnsafe());
    auto graph =
        ReachGraphIndex::Build(*setup->env.network, ReachGraphOptions{});
    STREACH_CHECK(graph.ok());
    setup->graph = MakeReachGraphBackend(std::move(graph).ValueUnsafe(),
                                         ReachGraphTraversal::kBmBfs);
    it = cache.emplace(which, std::move(setup)).first;
  }
  return *it->second;
}

struct Row {
  std::string dataset;
  double grid_ms;
  double graph_ms;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

// google-benchmark measures the full query batch; we report per-query
// CPU milliseconds from the indexes' own stopwatches as counters too.
double CpuMsPerQuery(ReachabilityIndex* backend,
                     const std::vector<ReachQuery>& queries) {
  const WorkloadSummary summary =
      RunThroughEngine(backend, queries, /*cold=*/false);
  return summary.total_cpu_seconds * 1e3 /
         static_cast<double>(summary.num_queries);
}

void GridCpu(benchmark::State& state, const std::string& which) {
  Setup& setup = GetSetup(which);
  double ms = 0;
  for (auto _ : state) {
    ms = CpuMsPerQuery(setup.grid.get(), setup.env.queries);
  }
  state.counters["cpu_ms_per_query"] = ms;
  Rows().push_back({setup.env.dataset.name + " ReachGrid", ms, 0});
}

void GraphCpu(benchmark::State& state, const std::string& which) {
  Setup& setup = GetSetup(which);
  double ms = 0;
  for (auto _ : state) {
    ms = CpuMsPerQuery(setup.graph.get(), setup.env.queries);
  }
  state.counters["cpu_ms_per_query"] = ms;
  Rows().push_back({setup.env.dataset.name + " ReachGraph", 0, ms});
}

BENCHMARK_CAPTURE(GridCpu, RWP_M, std::string("RWP"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(GraphCpu, RWP_M, std::string("RWP"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(GridCpu, VN_M, std::string("VN"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(GraphCpu, VN_M, std::string("VN"))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Figure 15 — CPU time, ReachGrid vs ReachGraph (RWP-M, VN-M)",
      "ReachGraph's precomputation gives far lower CPU time per query");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-22s %18s\n", "Index / dataset", "CPU ms per query");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-22s %18.3f\n", row.dataset.c_str(),
                row.grid_ms + row.graph_ms);
  }
  return 0;
}
