// Reproduces Figure 11 (a)/(b): contact network (DN) construction time as
// a function of |T| for the RWP and VN families.
//
// Paper: construction time grows with the object count and |T| (their full
// four-month datasets take up to 14 days; incremental maintenance is
// possible). The reproduction measures the same pipeline: per-tick
// spatiotemporal self-join (contact extraction) + reduction to DN.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "reachgraph/dn_builder.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  int64_t ticks;
  double join_seconds;       // Contact extraction (the trajectory join).
  double reduction_seconds;  // TEN -> DN reduction.
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Construct(benchmark::State& state, const std::string& which, DatasetScale scale) {
  const auto duration = static_cast<Timestamp>(state.range(0));
  BenchEnv env = MakeEnv(which, scale, duration, /*num_queries=*/0, 150, 350,
                         /*build_network=*/false);
  double join_s = 0, reduce_s = 0;
  for (auto _ : state) {
    Stopwatch watch;
    auto contacts =
        ExtractContacts(env.dataset.store, env.dataset.contact_range);
    join_s = watch.ElapsedSeconds();
    ContactNetwork network(env.dataset.num_objects(), env.dataset.span(),
                           std::move(contacts));
    watch.Restart();
    auto dn = BuildDnGraph(network);
    STREACH_CHECK(dn.ok());
    reduce_s = watch.ElapsedSeconds();
  }
  state.counters["join_s"] = join_s;
  state.counters["reduce_s"] = reduce_s;
  Rows().push_back({env.dataset.name, duration, join_s, reduce_s});
}

BENCHMARK_CAPTURE(Construct, RWP_S, std::string("RWP"), DatasetScale::kSmall)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, RWP_M, std::string("RWP"), DatasetScale::kMedium)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, RWP_L, std::string("RWP"), DatasetScale::kLarge)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, VN_S, std::string("VN"), DatasetScale::kSmall)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, VN_M, std::string("VN"), DatasetScale::kMedium)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, VN_L, std::string("VN"), DatasetScale::kLarge)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Figure 11 — contact network (DN) construction time vs |T|",
      "grows with |O| and |T|; join dominates, reduction is one pass");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %7s %12s %14s %12s\n", "Dataset", "|T|", "join (s)",
              "reduction (s)", "total (s)");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %7lld %12.2f %14.2f %12.2f\n", row.dataset.c_str(),
                static_cast<long long>(row.ticks), row.join_seconds,
                row.reduction_seconds,
                row.join_seconds + row.reduction_seconds);
  }
  return 0;
}
