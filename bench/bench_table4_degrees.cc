// Reproduces Table 4: the average vertex out-degree of the contact
// network at resolutions DN_2 .. DN_32 for the largest VN and RWP
// datasets and the (sparse-GPS) VNR dataset.
//
// Paper (VN4k / RWP40k / VNR):
//   DN_2: 2.9 / 3.0 / 1.5     DN_4: 6.1 / 8.1 / 1.7    DN_8: 16.3/33.4/2.3
//   DN_16: 55.5 / 75.6 / 3.69 DN_32: 221.4 / 322 / 9.0
// Shape to reproduce: degree grows super-linearly with the resolution, and
// VNR stays far below the dense families.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/augmenter.h"
#include "reachgraph/dn_builder.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  double degree[5];  // L = 2, 4, 8, 16, 32.
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Measure(benchmark::State& state, const std::string& which, DatasetScale scale) {
  BenchEnv env = MakeEnv(which, scale, /*duration=*/1000, /*num_queries=*/0);
  Row row;
  row.dataset = env.dataset.name;
  for (auto _ : state) {
    auto dn = BuildDnGraph(*env.network);
    STREACH_CHECK(dn.ok());
    AugmenterOptions options;
    options.num_resolutions = 6;
    STREACH_CHECK_OK(AugmentWithLongEdges(&*dn, options));
    int i = 0;
    for (int32_t len : {2, 4, 8, 16, 32}) {
      row.degree[i] = dn->AverageDegreeAtResolution(len);
      state.counters["DN_" + std::to_string(len)] = row.degree[i];
      ++i;
    }
  }
  Rows().push_back(row);
}

BENCHMARK_CAPTURE(Measure, VN_L, std::string("VN"), DatasetScale::kLarge)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Measure, RWP_L, std::string("RWP"), DatasetScale::kLarge)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Measure, VNR, std::string("VNR"), DatasetScale::kMedium)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Table 4 — average vertex degree of DN_i per resolution",
      "degree grows with L (up to 221/322/9 at DN_32); VNR much sparser");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-10s %8s %8s %8s %8s %8s\n", "Resolution",
              streach::bench::Rows().size() > 0
                  ? streach::bench::Rows()[0].dataset.c_str() : "-",
              streach::bench::Rows().size() > 1
                  ? streach::bench::Rows()[1].dataset.c_str() : "-",
              streach::bench::Rows().size() > 2
                  ? streach::bench::Rows()[2].dataset.c_str() : "-",
              "", "");
  const int lengths[5] = {2, 4, 8, 16, 32};
  for (int i = 0; i < 5; ++i) {
    std::printf("DN_%-7d", lengths[i]);
    for (const auto& row : streach::bench::Rows()) {
      std::printf(" %8.1f", row.degree[i]);
    }
    std::printf("\n");
  }
  return 0;
}
