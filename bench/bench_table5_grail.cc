// Reproduces Table 5 (a)/(b): ReachGraph vs GRAIL on memory-resident and
// disk-resident contact datasets, |Tp| = 300.
//
// Paper (|T|=1000 for the memory case):
//   (a) runtime:  VN2k  GRAIL 3.5 ms vs RG 9.0 ms;
//                 RWP20k GRAIL 60 ms vs RG 39 ms  (comparable overall)
//   (b) IO count: VN2k  GRAIL 213 vs RG 49   (RG wins 76%)
//                 RWP20k GRAIL 6790 vs RG 570 (RG wins 88%)

#include <benchmark/benchmark.h>

#include "baselines/grail.h"
#include "bench_common.h"
#include "reachgraph/dn_builder.h"
#include "reachgraph/reach_graph_index.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  double grail_ms, rg_ms;   // Table 5a.
  double grail_io, rg_io;   // Table 5b.
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Compare(benchmark::State& state, const std::string& which) {
  BenchEnv env = MakeEnv(which, DatasetScale::kMedium, /*duration=*/1000,
                         /*num_queries=*/50, 300, 300);
  auto rg = ReachGraphIndex::Build(*env.network, ReachGraphOptions{});
  STREACH_CHECK(rg.ok());
  auto dn = BuildDnGraph(*env.network);
  STREACH_CHECK(dn.ok());
  auto grail = GrailIndex::Build(*dn, GrailOptions{});
  STREACH_CHECK(grail.ok());

  Row row;
  row.dataset = env.dataset.name;
  for (auto _ : state) {
    double grail_cpu = 0, rg_cpu = 0, grail_io = 0, rg_io = 0;
    for (const ReachQuery& q : env.queries) {
      // Memory-resident runtimes (Table 5a): warm caches, measure CPU.
      STREACH_CHECK_OK((*grail)->QueryMemory(q).status());
      grail_cpu += (*grail)->last_query_stats().cpu_seconds;
      STREACH_CHECK_OK((*rg)->QueryBmBfs(q).status());
      rg_cpu += (*rg)->last_query_stats().cpu_seconds;
      // Disk-resident IO (Table 5b): cold caches.
      (*grail)->ClearCache();
      STREACH_CHECK_OK((*grail)->QueryDisk(q).status());
      grail_io += (*grail)->last_query_stats().io_cost;
      (*rg)->ClearCache();
      STREACH_CHECK_OK((*rg)->QueryBmBfs(q).status());
      rg_io += (*rg)->last_query_stats().io_cost;
    }
    const auto n = static_cast<double>(env.queries.size());
    row.grail_ms = grail_cpu * 1e3 / n;
    row.rg_ms = rg_cpu * 1e3 / n;
    row.grail_io = grail_io / n;
    row.rg_io = rg_io / n;
  }
  state.counters["grail_io"] = row.grail_io;
  state.counters["rg_io"] = row.rg_io;
  state.counters["grail_ms"] = row.grail_ms;
  state.counters["rg_ms"] = row.rg_ms;
  Rows().push_back(row);
}

BENCHMARK_CAPTURE(Compare, VN_M, std::string("VN"))
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Compare, RWP_M, std::string("RWP"))
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Table 5 — GRAIL vs ReachGraph, memory (runtime) and disk (IO)",
      "(a) memory: comparable runtimes; (b) disk: ReachGraph wins 76-88%");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n(a) memory-resident runtime per query\n");
  std::printf("%-8s %12s %12s\n", "Dataset", "GRAIL (ms)", "RG (ms)");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %12.3f %12.3f\n", row.dataset.c_str(), row.grail_ms,
                row.rg_ms);
  }
  std::printf("\n(b) disk-resident IO count per query\n");
  std::printf("%-8s %12s %12s %14s\n", "Dataset", "GRAIL IO", "RG IO",
              "RG wins by");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %12.1f %12.1f %13.1f%%\n", row.dataset.c_str(),
                row.grail_io, row.rg_io,
                streach::bench::ImprovementPct(row.rg_io, row.grail_io));
  }
  return 0;
}
