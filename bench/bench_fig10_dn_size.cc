// Reproduces Figure 10 (a)/(b) and the §6.2.1.1 reduction measurement:
// the number of edges and vertices of the reduced contact-network DAG DN
// as |T| grows, and the size reduction of DN relative to the TEN model CN.
//
// Paper: |V| and |E| grow with |T| and with the object count (RWP40k
// reaches 10,545M vertices / 17,466M edges); the reduction step shrinks
// the TEN by ~81%/80% (vertices/edges) on RWP and ~64%/61% on VN.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/dn_builder.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  int64_t ticks;
  uint64_t dn_vertices;
  uint64_t dn_edges;
  double vertex_reduction_pct;  // vs TEN (CN)
  double edge_reduction_pct;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Measure(benchmark::State& state, const std::string& which, DatasetScale scale) {
  const auto duration = static_cast<Timestamp>(state.range(0));
  BenchEnv env = MakeEnv(which, scale, duration, /*num_queries=*/0);
  uint64_t v = 0, e = 0;
  double vred = 0, ered = 0;
  for (auto _ : state) {
    auto dn = BuildDnGraph(*env.network);
    STREACH_CHECK(dn.ok());
    const TenStats ten = env.network->ComputeTenStats();
    v = dn->stats().num_vertices;
    e = dn->stats().num_edges;
    vred = 100.0 * (1.0 - static_cast<double>(v) /
                              static_cast<double>(ten.num_vertices));
    ered = 100.0 * (1.0 - static_cast<double>(e) /
                              static_cast<double>(ten.num_edges));
  }
  state.counters["V"] = static_cast<double>(v);
  state.counters["E"] = static_cast<double>(e);
  state.counters["V_reduction_pct"] = vred;
  state.counters["E_reduction_pct"] = ered;
  Rows().push_back({env.dataset.name, duration, v, e, vred, ered});
}

BENCHMARK_CAPTURE(Measure, RWP_S, std::string("RWP"), DatasetScale::kSmall)
    ->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Measure, RWP_M, std::string("RWP"), DatasetScale::kMedium)
    ->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Measure, RWP_L, std::string("RWP"), DatasetScale::kLarge)
    ->Arg(250)->Arg(500)->Arg(1000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Measure, VN_M, std::string("VN"), DatasetScale::kMedium)
    ->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Figure 10 + §6.2.1.1 — DN size vs |T|, and reduction vs the TEN",
      "V/E grow with |T| and |O|; reduction ~81%/80% (RWP), ~64%/61% (VN)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %7s %12s %12s %12s %12s\n", "Dataset", "|T|", "DN |V|",
              "DN |E|", "V red. %", "E red. %");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %7lld %12llu %12llu %11.1f%% %11.1f%%\n",
                row.dataset.c_str(), static_cast<long long>(row.ticks),
                static_cast<unsigned long long>(row.dn_vertices),
                static_cast<unsigned long long>(row.dn_edges),
                row.vertex_reduction_pct, row.edge_reduction_pct);
  }
  return 0;
}
