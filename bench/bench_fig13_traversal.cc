// Reproduces Figure 13: ReachGraph online query processing with the three
// traversal strategies — BM-BFS (bidirectional multi-resolution), B-BFS
// (bidirectional, single resolution), and the naive E-DFS.
//
// Paper: BM-BFS outperforms E-DFS by >80% and B-BFS by >=15% on both
// RWP20k and VN2k: long edges shorten the traversal and component-member
// checks terminate it as soon as a contact path is found.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/reach_graph_index.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  double bm, bb, edfs;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Compare(benchmark::State& state, const std::string& which) {
  BenchEnv env = MakeEnv(which, DatasetScale::kMedium, /*duration=*/1000,
                         /*num_queries=*/50);
  auto index = ReachGraphIndex::Build(*env.network, ReachGraphOptions{});
  STREACH_CHECK(index.ok());
  // One backend session per traversal, all over the same shared index —
  // the uniform interface every evaluator comparison goes through now.
  std::shared_ptr<const ReachGraphIndex> shared = std::move(*index);
  auto bm_backend = MakeReachGraphBackend(shared, ReachGraphTraversal::kBmBfs);
  auto bb_backend = MakeReachGraphBackend(shared, ReachGraphTraversal::kBBfs);
  auto ed_backend = MakeReachGraphBackend(shared, ReachGraphTraversal::kEDfs);
  double bm = 0, bb = 0, edfs = 0;
  for (auto _ : state) {
    bm = RunThroughEngine(bm_backend.get(), env.queries).mean_io_cost();
    bb = RunThroughEngine(bb_backend.get(), env.queries).mean_io_cost();
    edfs = RunThroughEngine(ed_backend.get(), env.queries).mean_io_cost();
  }
  state.counters["BM_BFS_io"] = bm;
  state.counters["B_BFS_io"] = bb;
  state.counters["E_DFS_io"] = edfs;
  Rows().push_back({env.dataset.name, bm, bb, edfs});
}

BENCHMARK_CAPTURE(Compare, RWP_M, std::string("RWP"))
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Compare, VN_M, std::string("VN"))
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Figure 13 — BM-BFS vs B-BFS vs E-DFS query IO (RWP-M, VN-M)",
      "BM-BFS beats E-DFS by >80% and B-BFS by >=15%");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %10s %10s %10s %18s %18s\n", "Dataset", "BM-BFS",
              "B-BFS", "E-DFS", "BM vs E-DFS", "BM vs B-BFS");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %10.1f %10.1f %10.1f %17.1f%% %17.1f%%\n",
                row.dataset.c_str(), row.bm, row.bb, row.edfs,
                streach::bench::ImprovementPct(row.bm, row.edfs),
                streach::bench::ImprovementPct(row.bm, row.bb));
  }
  return 0;
}
