// Ablation A (design choice of §5.1.2.1, step 2): what does merging runs
// of identical connected components (aggregated edges) buy?
//
// Expectation: merging shrinks DN by an order of magnitude — the paper
// notes the effect is strongest "when the sampling rate for objects
// positions is high relevant to the objects moving speed" — and the
// smaller graph directly translates into fewer query IOs.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/reach_graph_index.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string config;
  uint64_t vertices;
  uint64_t edges;
  uint64_t pages;
  double io;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Compare(benchmark::State& state, bool merging) {
  BenchEnv env = MakeEnv("RWP", DatasetScale::kMedium, /*duration=*/1000,
                         /*num_queries=*/40);
  ReachGraphOptions options;
  options.merge_identical_components = merging;
  auto index = ReachGraphIndex::Build(*env.network, options);
  STREACH_CHECK(index.ok());
  double io = 0;
  for (auto _ : state) {
    io = 0;
    for (const ReachQuery& q : env.queries) {
      (*index)->ClearCache();
      STREACH_CHECK_OK((*index)->QueryBmBfs(q).status());
      io += (*index)->last_query_stats().io_cost;
    }
    io /= static_cast<double>(env.queries.size());
  }
  const auto& dn = (*index)->build_stats().dn;
  state.counters["V"] = static_cast<double>(dn.num_vertices);
  state.counters["E"] = static_cast<double>(dn.num_edges);
  state.counters["avg_io"] = io;
  Rows().push_back({merging ? "merged (paper)" : "unmerged",
                    dn.num_vertices, dn.num_edges,
                    (*index)->build_stats().index_pages, io});
}

BENCHMARK_CAPTURE(Compare, Merged, true)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Compare, Unmerged, false)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Ablation — reduction step 2 (aggregated-edge merging), RWP-M",
      "merging shrinks DN drastically and cuts query IO");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-16s %12s %12s %10s %10s\n", "Config", "DN |V|", "DN |E|",
              "pages", "avg IO");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-16s %12llu %12llu %10llu %10.1f\n", row.config.c_str(),
                static_cast<unsigned long long>(row.vertices),
                static_cast<unsigned long long>(row.edges),
                static_cast<unsigned long long>(row.pages), row.io);
  }
  return 0;
}
