// Ablation C (§6.2.1.4): query IO versus the number of HN resolutions
// (1 = DN_1 only .. 7 = up to DN_64).
//
// Paper: a tradeoff — more resolutions let BM-BFS take longer jumps, but
// "this can significantly increase the number of edges if overdone and
// hence adversely reduce the efficiency of query expansion"; their
// empirical optimum is 6 resolutions.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgraph/reach_graph_index.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  int resolutions;
  uint64_t long_edges;
  uint64_t pages;
  double io;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

BenchEnv& Env(const std::string& which) {
  static std::unordered_map<std::string, std::unique_ptr<BenchEnv>> cache;
  auto it = cache.find(which);
  if (it == cache.end()) {
    it = cache
             .emplace(which, std::make_unique<BenchEnv>(MakeEnv(
                                 which, DatasetScale::kMedium,
                                 /*duration=*/1000, /*num_queries=*/40)))
             .first;
  }
  return *it->second;
}

void ResolutionSweep(benchmark::State& state, const std::string& which) {
  const int resolutions = static_cast<int>(state.range(0));
  BenchEnv& env = Env(which);
  ReachGraphOptions options;
  options.num_resolutions = resolutions;
  auto index = ReachGraphIndex::Build(*env.network, options);
  STREACH_CHECK(index.ok());
  double io = 0;
  for (auto _ : state) {
    io = 0;
    for (const ReachQuery& q : env.queries) {
      (*index)->ClearCache();
      STREACH_CHECK_OK((*index)->QueryBmBfs(q).status());
      io += (*index)->last_query_stats().io_cost;
    }
    io /= static_cast<double>(env.queries.size());
  }
  state.counters["avg_io"] = io;
  state.counters["long_edges"] =
      static_cast<double>((*index)->build_stats().dn.num_long_edges);
  Rows().push_back({env.dataset.name, resolutions,
                    (*index)->build_stats().dn.num_long_edges,
                    (*index)->build_stats().index_pages, io});
}

BENCHMARK_CAPTURE(ResolutionSweep, RWP_M, std::string("RWP"))
    ->DenseRange(1, 7)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Ablation — number of HN resolutions (§6.2.1.4), RWP-M",
      "IO falls with added resolutions, then flattens/rises (optimum ~6)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %12s %14s %10s %10s\n", "Dataset", "resolutions",
              "long edges", "pages", "avg IO");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %12d %14llu %10llu %10.1f\n", row.dataset.c_str(),
                row.resolutions,
                static_cast<unsigned long long>(row.long_edges),
                static_cast<unsigned long long>(row.pages), row.io);
  }
  return 0;
}
