// Query-family sweep: every non-boolean family (engine/query_spec.h) on
// every set-capable backend, measuring per-family throughput/IO and
// emitting the cross-backend agreement evidence CI gates on.
//
// Not a paper experiment — the paper's workload is boolean reach; this
// charts the family layer (PR 9): decay / k-hop / threshold evaluate
// through ConstrainedProfile, top-k through ReachableSets, and every
// backend must produce byte-identical answers. Each cell therefore
// records a canonical hash of its answer vector (equal across backends
// of one family) plus the reach count of a *relaxed* rerun of the same
// specs — decay 0, unbounded hops, probability floor 0 — which bounds
// the constrained count from above (the validate_bench invariant).
// docs/BENCH_SCHEMA.md documents every field.
//
// Set STREACH_BENCH_TINY=1 to run a reduced dataset — the CI bench-smoke
// configuration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/spj.h"
#include "bench_common.h"
#include "engine/query_spec.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

bool TinyMode() {
  const char* tiny = std::getenv("STREACH_BENCH_TINY");
  return tiny != nullptr && tiny[0] != '\0' && tiny[0] != '0';
}

BenchEnv& Env() {
  static BenchEnv env =
      TinyMode() ? MakeEnv("RWP", DatasetScale::kSmall,
                           /*duration=*/300, /*num_queries=*/0)
                 : MakeEnv("RWP", DatasetScale::kMedium,
                           /*duration=*/1000, /*num_queries=*/0);
  return env;
}

/// Specs per family per cell. Family queries materialize whole profiles
/// (no destination early-exit), so the sweep uses a lighter workload
/// than the boolean benches.
int QueriesPerCell() { return TinyMode() ? 24 : 80; }

struct Backend {
  std::string name;
  std::unique_ptr<ReachabilityIndex> session;
};

std::vector<Backend>& Backends() {
  static std::vector<Backend>* backends = [] {
    auto* list = new std::vector<Backend>();
    ReachGridOptions grid_options;
    grid_options.temporal_resolution = 20;
    grid_options.spatial_cell_size = 1024.0;
    grid_options.contact_range = Env().dataset.contact_range;
    auto grid = ReachGridIndex::Build(Env().dataset.store, grid_options);
    STREACH_CHECK(grid.ok());
    list->push_back(
        {"ReachGrid",
         MakeReachGridBackend(std::shared_ptr<const ReachGridIndex>(
             std::move(*grid)))});
    auto graph = ReachGraphIndex::Build(*Env().network, ReachGraphOptions{});
    STREACH_CHECK(graph.ok());
    list->push_back(
        {"ReachGraph",
         MakeReachGraphBackend(std::shared_ptr<const ReachGraphIndex>(
                                   std::move(*graph)),
                               ReachGraphTraversal::kBmBfs)});
    SpjOptions spj_options;
    spj_options.contact_range = Env().dataset.contact_range;
    auto spj = SpjEvaluator::Build(Env().dataset.store, spj_options);
    STREACH_CHECK(spj.ok());
    list->push_back(
        {"SPJ", MakeSpjBackend(
                    std::shared_ptr<const SpjEvaluator>(std::move(*spj)))});
    return list;
  }();
  return *backends;
}

std::vector<QuerySpec> SpecsFor(QueryFamily family) {
  FamilyWorkloadParams params;
  params.base.num_queries = QueriesPerCell();
  params.base.num_objects = Env().dataset.num_objects();
  params.base.span = Env().dataset.span();
  params.base.min_interval_len = TinyMode() ? 50 : 150;
  params.base.max_interval_len = TinyMode() ? 200 : 350;
  params.base.seed = 4242;
  params.family = family;
  return GenerateFamilyWorkload(params);
}

/// The same specs with their family constraint disabled: decay 0,
/// unbounded hop budget/window, probability floor 0. The relaxed reach
/// count bounds the constrained one from above (boolean and top-k are
/// their own relaxation).
std::vector<QuerySpec> Relax(std::vector<QuerySpec> specs) {
  for (QuerySpec& spec : specs) {
    switch (spec.family) {
      case QueryFamily::kDecayReach:
        spec.decay = 0.0;
        break;
      case QueryFamily::kKHopReach:
        spec.max_hops = -1;
        spec.per_hop_ticks = -1;
        break;
      case QueryFamily::kThresholdReach:
        spec.min_path_probability = 0.0;
        break;
      case QueryFamily::kBoolean:
      case QueryFamily::kTopKSources:
        break;
    }
  }
  return specs;
}

/// Canonical FNV-1a hash of an answer vector — equal across backends iff
/// the answers are byte-identical (the equivalence CI checks).
uint64_t HashAnswers(const std::vector<FamilyAnswer>& answers) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  auto mix_double = [&](double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const FamilyAnswer& a : answers) {
    mix(static_cast<uint64_t>(a.family));
    mix(a.point.reachable ? 1 : 0);
    mix(static_cast<uint64_t>(a.point.arrival_time));
    mix_double(a.best_probability);
    mix(a.profile.size());
    for (const ReachProfileEntry& e : a.profile) {
      mix(static_cast<uint64_t>(e.infected_at));
      mix(static_cast<uint64_t>(e.transfers));
    }
    mix(a.ranked.size());
    for (const TopKEntry& e : a.ranked) {
      mix(e.source);
      mix(e.reach_count);
    }
  }
  return h;
}

struct Row {
  std::string family;
  std::string backend;
  int num_queries;
  uint64_t num_reachable;
  uint64_t relaxed_reachable;
  uint64_t answers_hash;
  double wall_seconds;
  double queries_per_second;
  double mean_io_cost;
  double p50_latency;
  double p95_latency;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void FamilySweep(benchmark::State& state, QueryFamily family) {
  Backend& backend = Backends()[static_cast<size_t>(state.range(0))];
  const auto specs = SpecsFor(family);
  const auto relaxed = Relax(specs);
  for (auto _ : state) {
    QueryEngine engine;
    auto report = engine.RunFamilies(backend.session.get(), specs);
    STREACH_CHECK(report.ok());
    auto relaxed_report = engine.RunFamilies(backend.session.get(), relaxed);
    STREACH_CHECK(relaxed_report.ok());
    Rows().push_back({FamilyName(family), backend.name,
                      static_cast<int>(specs.size()),
                      report->summary.num_reachable,
                      relaxed_report->summary.num_reachable,
                      HashAnswers(report->answers),
                      report->summary.wall_seconds,
                      report->summary.queries_per_second,
                      report->summary.mean_io_cost(),
                      report->summary.p50_latency,
                      report->summary.p95_latency});
  }
}

#define FAMILY_BENCH(name, family)                               \
  BENCHMARK_CAPTURE(FamilySweep, name, family)                   \
      ->DenseRange(0, 2) /* backend index */                     \
      ->ArgNames({"backend"})                                    \
      ->Iterations(1)                                            \
      ->Unit(benchmark::kMillisecond)

FAMILY_BENCH(boolean, QueryFamily::kBoolean);
FAMILY_BENCH(decay, QueryFamily::kDecayReach);
FAMILY_BENCH(khop, QueryFamily::kKHopReach);
FAMILY_BENCH(topk, QueryFamily::kTopKSources);
FAMILY_BENCH(threshold, QueryFamily::kThresholdReach);

#undef FAMILY_BENCH

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"family\": \"%s\", \"backend\": \"%s\", \"num_queries\": %d, "
        "\"num_reachable\": %llu, \"relaxed_reachable\": %llu, "
        "\"answers_hash\": \"%016llx\", \"wall_seconds\": %.6f, "
        "\"queries_per_second\": %.1f, \"mean_io_cost\": %.2f, "
        "\"p50_latency\": %.6f, \"p95_latency\": %.6f}%s\n",
        r.family.c_str(), r.backend.c_str(), r.num_queries,
        static_cast<unsigned long long>(r.num_reachable),
        static_cast<unsigned long long>(r.relaxed_reachable),
        static_cast<unsigned long long>(r.answers_hash), r.wall_seconds,
        r.queries_per_second, r.mean_io_cost, r.p50_latency, r.p95_latency,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

void PrintFamilyTable() {
  std::printf("\n%-10s %-10s %8s %10s %10s %18s %10s %10s\n", "Family",
              "Backend", "Queries", "Reached", "Relaxed", "AnswersHash",
              "qps", "mean IO");
  for (const Row& r : Rows()) {
    std::printf("%-10s %-10s %8d %10llu %10llu %18llx %10.1f %10.2f\n",
                r.family.c_str(), r.backend.c_str(), r.num_queries,
                static_cast<unsigned long long>(r.num_reachable),
                static_cast<unsigned long long>(r.relaxed_reachable),
                static_cast<unsigned long long>(r.answers_hash),
                r.queries_per_second, r.mean_io_cost);
  }
  WriteJson("BENCH_query_families.json");
  std::printf("Wrote BENCH_query_families.json (%zu cells)\n", Rows().size());
}

}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Query families — decay / k-hop / top-k / threshold on every "
      "set-capable backend",
      "(beyond the paper) every family reduces onto ConstrainedProfile or "
      "ReachableSets, so ReachGrid, ReachGraph and SPJ answer them "
      "byte-identically");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  streach::bench::PrintFamilyTable();
  return 0;
}
