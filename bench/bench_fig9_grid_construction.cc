// Reproduces Figure 9 (a)/(b): ReachGrid index construction time as a
// function of the indexed period |T|, for the RWP and VN families.
//
// Paper: construction time grows with both the number of objects and |T|;
// all cases finish within 4.3 hours at their 100+ GB scale. At our scale
// the same linear-in-|O||T| growth must show, in seconds.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  int64_t ticks;
  double seconds;
  double index_mb;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Construct(benchmark::State& state, const std::string& which, DatasetScale scale) {
  const auto duration = static_cast<Timestamp>(state.range(0));
  BenchEnv env = MakeEnv(which, scale, duration, /*num_queries=*/0, 150, 350,
                         /*build_network=*/false);
  ReachGridOptions options;
  options.temporal_resolution = 20;
  options.spatial_cell_size = which == "RWP" ? 1024.0 : 2500.0;
  options.contact_range = env.dataset.contact_range;
  double seconds = 0, mb = 0;
  for (auto _ : state) {
    auto index = ReachGridIndex::Build(env.dataset.store, options);
    STREACH_CHECK(index.ok());
    seconds = (*index)->build_stats().build_seconds;
    mb = static_cast<double>((*index)->build_stats().index_bytes) / 1e6;
  }
  state.counters["build_s"] = seconds;
  state.counters["index_MB"] = mb;
  Rows().push_back({env.dataset.name, duration, seconds, mb});
}

BENCHMARK_CAPTURE(Construct, RWP_S, std::string("RWP"), DatasetScale::kSmall)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, RWP_M, std::string("RWP"), DatasetScale::kMedium)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, RWP_L, std::string("RWP"), DatasetScale::kLarge)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, VN_S, std::string("VN"), DatasetScale::kSmall)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, VN_M, std::string("VN"), DatasetScale::kMedium)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Construct, VN_L, std::string("VN"), DatasetScale::kLarge)
    ->Arg(500)->Arg(1000)->Arg(2000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Figure 9 — ReachGrid construction time vs |T| (RWP & VN)",
      "time grows with object count and |T| (roughly linearly)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %8s %12s %10s\n", "Dataset", "|T|", "build (s)",
              "index MB");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %8lld %12.2f %10.1f\n", row.dataset.c_str(),
                static_cast<long long>(row.ticks), row.seconds, row.index_mb);
  }
  return 0;
}
