// Reproduces the §6.1.2 comparison: ReachGrid query processing versus the
// naive SPJ evaluator that materializes the whole window contact network.
//
// Paper: "our ReachGrid approach outperforms SPJ by at least 96% for all
// RWP and VN datasets". The margin grows with dataset size (SPJ scans all
// |O| trajectories in the window; ReachGrid touches only the cells its
// seed set passes through), so at laptop scale we expect the same
// direction with a smaller percentage.

#include <benchmark/benchmark.h>

#include "baselines/spj.h"
#include "bench_common.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  double grid_io;
  double spj_io;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void Compare(benchmark::State& state, const std::string& which, DatasetScale scale, double cell) {
  BenchEnv env = MakeEnv(which, scale, /*duration=*/1000, /*num_queries=*/50,
                         150, 350, /*build_network=*/false);
  ReachGridOptions grid_options;
  grid_options.temporal_resolution = 20;
  grid_options.spatial_cell_size = cell;
  grid_options.contact_range = env.dataset.contact_range;
  auto grid = ReachGridIndex::Build(env.dataset.store, grid_options);
  STREACH_CHECK(grid.ok());
  SpjOptions spj_options;
  spj_options.contact_range = env.dataset.contact_range;
  auto spj = SpjEvaluator::Build(env.dataset.store, spj_options);
  STREACH_CHECK(spj.ok());

  double grid_io = 0, spj_io = 0;
  for (auto _ : state) {
    grid_io = spj_io = 0;
    for (const ReachQuery& q : env.queries) {
      (*grid)->ClearCache();
      STREACH_CHECK_OK((*grid)->Query(q).status());
      grid_io += (*grid)->last_query_stats().io_cost;
      (*spj)->ClearCache();
      STREACH_CHECK_OK((*spj)->Query(q).status());
      spj_io += (*spj)->last_query_stats().io_cost;
    }
    grid_io /= static_cast<double>(env.queries.size());
    spj_io /= static_cast<double>(env.queries.size());
  }
  state.counters["grid_io"] = grid_io;
  state.counters["spj_io"] = spj_io;
  state.counters["improvement_pct"] = ImprovementPct(grid_io, spj_io);
  Rows().push_back({env.dataset.name, grid_io, spj_io});
}

BENCHMARK_CAPTURE(Compare, RWP_M, std::string("RWP"), DatasetScale::kMedium,
                  1024.0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Compare, VN_M, std::string("VN"), DatasetScale::kMedium,
                  2500.0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "§6.1.2 — ReachGrid vs SPJ (naive scan-join-traverse)",
      "ReachGrid >= 96% fewer IOs at 10k-40k objects; margin grows with size");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n%-8s %14s %12s %14s\n", "Dataset", "ReachGrid IO", "SPJ IO",
              "improvement");
  for (const auto& row : streach::bench::Rows()) {
    std::printf("%-8s %14.1f %12.1f %13.1f%%\n", row.dataset.c_str(),
                row.grid_io, row.spj_io,
                streach::bench::ImprovementPct(row.grid_io, row.spj_io));
  }
  return 0;
}
