// Contact-extraction front-end scaling sweep: wall time of the
// CSR-cell-list proximity join under objects x join_threads x dT,
// against the seed joiner (per-cell vector buckets, per-object position
// lookups, single-threaded scan) rebuilt here as the baseline.
//
// Not a paper experiment — this charts the front end that feeds every
// index build (PR 7): the flat cell list removes the per-cell/per-tick
// allocation churn of the seed joiner, and the time-slice chunked scan
// spreads the per-tick sweeps across join_threads workers. Every cell
// STREACH_CHECKs that the extracted contact set is identical to the
// seed baseline — only wall time moves, which is exactly what the
// emitted BENCH_join_scaling.json records. On a single-core host the
// join_threads axis is flat; run on a multi-core box to chart the
// extraction speedup. docs/BENCH_SCHEMA.md documents every field.
//
// Set STREACH_BENCH_TINY=1 to run a reduced dataset — the CI bench-smoke
// configuration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "generators/random_waypoint.h"
#include "join/contact_extractor.h"
#include "spatial/grid2d.h"

namespace streach {
namespace bench {
namespace {

bool TinyMode() {
  const char* tiny = std::getenv("STREACH_BENCH_TINY");
  return tiny != nullptr && tiny[0] != '\0' && tiny[0] != '0';
}

const std::vector<int>& ObjectCounts() {
  static const std::vector<int> tiny = {100, 200};
  static const std::vector<int> full = {400, 800, 1600};
  return TinyMode() ? tiny : full;
}

Timestamp Duration() { return TinyMode() ? 150 : 300; }

const std::vector<double>& ContactRanges() {
  // Half and full Bluetooth range (the RWP dT of §6).
  static const std::vector<double> ranges = {12.5, 25.0};
  return ranges;
}

/// One store per object count, generated once per process. All counts
/// share the environment, so the objects axis sweeps density too (the
/// paper's RWP10k/20k/40k keep E fixed the same way).
const TrajectoryStore& Store(int objects) {
  static std::map<int, TrajectoryStore>* stores =
      new std::map<int, TrajectoryStore>();
  auto it = stores->find(objects);
  if (it == stores->end()) {
    RandomWaypointParams params;
    params.num_objects = objects;
    params.area = TinyMode() ? Rect(0, 0, 500, 500) : Rect(0, 0, 2000, 2000);
    params.duration = Duration();
    params.seed = 42;
    auto store = GenerateRandomWaypoint(params);
    STREACH_CHECK(store.ok());
    it = stores->emplace(objects, std::move(store).ValueUnsafe()).first;
  }
  return it->second;
}

/// The seed joiner, reproduced from the pre-PR-7 sources: per-cell
/// vector buckets refilled every tick (no tick cache), per-object
/// PositionAt lookups with their bounds check apiece, sequential sweep
/// over the used buckets, per-tick pair sort, open-map run coalescing.
/// This is the front end the CSR cell list replaces — kept here as the
/// measured baseline and the correctness oracle.
std::vector<Contact> SeedExtractContacts(const TrajectoryStore& store,
                                         double dt) {
  std::vector<Contact> contacts;
  if (store.num_objects() < 2 || store.span().empty()) return contacts;
  Rect extent = store.ComputeExtent();
  if (extent.Width() <= 0.0 || extent.Height() <= 0.0) {
    extent = extent.Padded(1.0);
  }
  const UniformGrid2D grid(extent, dt);
  const double dt_sq = dt * dt;
  std::vector<std::vector<ObjectId>> buckets(grid.num_cells());
  std::vector<CellId> used_buckets;
  std::unordered_map<uint64_t, Timestamp> open;
  std::unordered_map<uint64_t, Timestamp> still_open;
  const TimeInterval w = store.span();
  for (Timestamp t = w.start; t <= w.end; ++t) {
    for (CellId c : used_buckets) buckets[c].clear();
    used_buckets.clear();
    for (ObjectId o = 0; o < store.num_objects(); ++o) {
      const CellId c = grid.CellOf(store.PositionAt(o, t));
      if (buckets[c].empty()) used_buckets.push_back(c);
      buckets[c].push_back(o);
    }
    std::vector<std::pair<ObjectId, ObjectId>> pairs;
    static constexpr int kForward[4][2] = {{0, 1}, {1, -1}, {1, 0}, {1, 1}};
    for (CellId cell : used_buckets) {
      const auto& mine = buckets[cell];
      for (size_t i = 0; i < mine.size(); ++i) {
        const Point& pa = store.PositionAt(mine[i], t);
        for (size_t j = i + 1; j < mine.size(); ++j) {
          if (Point::DistanceSquared(pa, store.PositionAt(mine[j], t)) <
              dt_sq) {
            pairs.emplace_back(std::min(mine[i], mine[j]),
                               std::max(mine[i], mine[j]));
          }
        }
      }
      const int row = grid.RowOfCell(cell);
      const int col = grid.ColOfCell(cell);
      for (const auto& d : kForward) {
        const int nr = row + d[0];
        const int nc = col + d[1];
        if (nr < 0 || nr >= grid.rows() || nc < 0 || nc >= grid.cols()) {
          continue;
        }
        const auto& theirs = buckets[grid.CellAt(nr, nc)];
        for (ObjectId a : mine) {
          const Point& pa = store.PositionAt(a, t);
          for (ObjectId b : theirs) {
            if (Point::DistanceSquared(pa, store.PositionAt(b, t)) < dt_sq) {
              pairs.emplace_back(std::min(a, b), std::max(a, b));
            }
          }
        }
      }
    }
    std::sort(pairs.begin(), pairs.end());
    still_open.clear();
    for (const auto& [a, b] : pairs) {
      const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
      auto it = open.find(key);
      if (it != open.end()) {
        still_open.emplace(key, it->second);
        open.erase(it);
      } else {
        still_open.emplace(key, t);
      }
    }
    for (const auto& [key, start] : open) {
      contacts.emplace_back(static_cast<ObjectId>(key >> 32),
                            static_cast<ObjectId>(key & 0xFFFFFFFFu),
                            TimeInterval(start, t - 1));
    }
    std::swap(open, still_open);
  }
  for (const auto& [key, start] : open) {
    contacts.emplace_back(static_cast<ObjectId>(key >> 32),
                          static_cast<ObjectId>(key & 0xFFFFFFFFu),
                          TimeInterval(start, w.end));
  }
  std::sort(contacts.begin(), contacts.end());
  return contacts;
}

struct Row {
  int objects;
  int64_t ticks;
  double dt;
  int join_threads;
  double extract_seconds;
  double ticks_per_sec;
  size_t contacts;
  double seed_seconds;
  unsigned hardware_concurrency;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

/// Shots per measurement. Single-shot wall times at smoke scale are
/// dominated by first-touch page faults and scheduler noise; the
/// minimum over several shots is the stable figure.
constexpr int kShots = 5;

/// Seed baseline per (objects, dT): timed once, reused by every
/// join_threads cell as the oracle and (for threads > 1 cells) the
/// reported seed_seconds.
struct SeedResult {
  double seconds;
  std::vector<Contact> contacts;
};
const SeedResult& Seed(int objects, double dt) {
  static std::map<std::pair<int, double>, SeedResult>* seeds =
      new std::map<std::pair<int, double>, SeedResult>();
  auto it = seeds->find({objects, dt});
  if (it == seeds->end()) {
    const TrajectoryStore& store = Store(objects);
    double seconds = 0.0;
    std::vector<Contact> contacts;
    for (int rep = 0; rep < kShots; ++rep) {
      Stopwatch timer;
      contacts = SeedExtractContacts(store, dt);
      const double elapsed = timer.ElapsedSeconds();
      if (rep == 0 || elapsed < seconds) seconds = elapsed;
    }
    it = seeds->emplace(std::make_pair(objects, dt),
                        SeedResult{seconds, std::move(contacts)})
             .first;
  }
  return it->second;
}

void JoinScaling(benchmark::State& state) {
  const int objects = ObjectCounts()[static_cast<size_t>(state.range(0))];
  const int threads = static_cast<int>(state.range(1));
  const double dt = ContactRanges()[static_cast<size_t>(state.range(2))];
  const TrajectoryStore& store = Store(objects);
  const SeedResult& seed = Seed(objects, dt);
  JoinOptions options;
  options.threads = threads;
  for (auto _ : state) {
    // Min-of-kShots. The 1-thread cells carry CI's CSR-vs-seed
    // assertion, so there the seed is re-timed inside the same cell,
    // shot for shot alternating with the CSR join — both measurements
    // see the same machine conditions instead of the seed being timed
    // once at first use and compared against a cell run much later.
    double seconds = 0.0;
    double seed_seconds = seed.seconds;
    std::vector<Contact> contacts;
    for (int rep = 0; rep < kShots; ++rep) {
      if (threads == 1) {
        Stopwatch seed_timer;
        std::vector<Contact> seed_shot = SeedExtractContacts(store, dt);
        const double seed_elapsed = seed_timer.ElapsedSeconds();
        benchmark::DoNotOptimize(seed_shot.data());
        if (rep == 0 || seed_elapsed < seed_seconds) {
          seed_seconds = seed_elapsed;
        }
      }
      Stopwatch timer;
      contacts = ExtractContacts(store, dt, options);
      const double elapsed = timer.ElapsedSeconds();
      if (rep == 0 || elapsed < seconds) seconds = elapsed;
    }
    // The front-end contract: same contacts at every configuration.
    STREACH_CHECK(contacts == seed.contacts);
    const int64_t ticks = store.span().length();
    Rows().push_back({objects, ticks, dt, threads, seconds,
                      seconds > 0 ? ticks / seconds : 0.0, contacts.size(),
                      seed_seconds, std::thread::hardware_concurrency()});
  }
}

BENCHMARK(JoinScaling)
    ->ArgsProduct({
        benchmark::CreateDenseRange(
            0, static_cast<int64_t>(ObjectCounts().size()) - 1, 1),
        {1, 2, 4},
        benchmark::CreateDenseRange(
            0, static_cast<int64_t>(ContactRanges().size()) - 1, 1),
    })
    ->ArgNames({"objects_idx", "join_threads", "dt_idx"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"objects\": %d, \"ticks\": %lld, \"dt\": %.2f, "
        "\"join_threads\": %d, \"extract_seconds\": %.6f, "
        "\"ticks_per_sec\": %.1f, \"contacts\": %zu, "
        "\"seed_seconds\": %.6f, \"hardware_concurrency\": %u}%s\n",
        r.objects, static_cast<long long>(r.ticks), r.dt, r.join_threads,
        r.extract_seconds, r.ticks_per_sec, r.contacts, r.seed_seconds,
        r.hardware_concurrency, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

void PrintJoinTable() {
  std::printf("\n%-8s %6s %8s %8s %12s %12s %10s %12s\n", "Objects", "dT",
              "Threads", "Ticks", "extract(ms)", "seed(ms)", "Contacts",
              "ticks/sec");
  for (const Row& r : Rows()) {
    std::printf("%-8d %6.1f %8d %8lld %12.2f %12.2f %10zu %12.0f\n",
                r.objects, r.dt, r.join_threads,
                static_cast<long long>(r.ticks), r.extract_seconds * 1e3,
                r.seed_seconds * 1e3, r.contacts, r.ticks_per_sec);
  }
  WriteJson("BENCH_join_scaling.json");
  std::printf("Wrote BENCH_join_scaling.json (%zu cells)\n", Rows().size());
}

}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Join scaling — contact-extraction wall time under objects x "
      "join_threads x dT",
      "(beyond the paper) the CSR cell-list join beats the seed joiner "
      "at every scale and the chunked scan parallelizes across "
      "join_threads without changing a single contact");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  streach::bench::PrintJoinTable();
  return 0;
}
