// Streaming-ingestion sweep: append throughput of the mutable head and
// the seal pipeline under seal_interval x num_shards x page codec, plus
// the equivalence flag CI gates on — every cell's SegmentedIndex must
// answer the workload byte-identically to a one-shot batch build.
//
// Not a paper experiment — the paper builds its indexes offline; this
// charts the live tier (PR 6): contacts stream into the head segment and
// watermark-gated seals push closed prefixes through the batch write
// stack. Smaller seal intervals mean more (smaller) sealed segments and
// more fixpoint units per query; answers never move, which is exactly
// what the emitted BENCH_streaming.json records per cell.
// docs/BENCH_SCHEMA.md documents every field.
//
// Set STREACH_BENCH_TINY=1 to run a reduced dataset — the CI bench-smoke
// configuration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "stream/segmented_index.h"
#include "stream/streaming_ingestor.h"
#include "stream/streaming_options.h"

namespace streach {
namespace bench {
namespace {

bool TinyMode() {
  const char* tiny = std::getenv("STREACH_BENCH_TINY");
  return tiny != nullptr && tiny[0] != '\0' && tiny[0] != '0';
}

BenchEnv& Env() {
  static BenchEnv env =
      TinyMode() ? MakeEnv("RWP", DatasetScale::kSmall,
                           /*duration=*/300, /*num_queries=*/40,
                           /*min_interval=*/50, /*max_interval=*/200,
                           /*build_network=*/false)
                 : MakeEnv("RWP", DatasetScale::kMedium,
                           /*duration=*/1000, /*num_queries=*/200,
                           /*min_interval=*/150, /*max_interval=*/350,
                           /*build_network=*/false);
  return env;
}

/// The stream every cell ingests: the dataset's contacts in ContactSink
/// emission order (runs grouped by close tick) — what ExtractContactsTo
/// would deliver, extracted once so cells time the streaming tier, not
/// the join.
const std::vector<Contact>& Arrivals() {
  static const std::vector<Contact>* arrivals = [] {
    auto* contacts = new std::vector<Contact>(ExtractContacts(
        Env().dataset.store, Env().dataset.contact_range));
    std::sort(contacts->begin(), contacts->end(),
              [](const Contact& x, const Contact& y) {
                return std::tie(x.validity.end, x.validity.start, x.a, x.b) <
                       std::tie(y.validity.end, y.validity.start, y.a, y.b);
              });
    return contacts;
  }();
  return *arrivals;
}

/// Workload answers from a one-shot batch build (one seal covering the
/// whole span): the equality reference every cell is checked against.
const std::vector<ReachAnswer>& ReferenceAnswers() {
  static const std::vector<ReachAnswer>* answers = [] {
    StreamingOptions options;
    options.num_objects = Env().dataset.num_objects();
    options.span = Env().dataset.span();
    options.seal_interval_ticks =
        static_cast<int>(Env().dataset.span().length());
    auto ingestor = StreamingIngestor::Create(options);
    STREACH_CHECK(ingestor.ok());
    for (const Contact& c : Arrivals()) {
      STREACH_CHECK((*ingestor)->Append(c).ok());
    }
    STREACH_CHECK((*ingestor)->SealRemaining().ok());
    auto backend = MakeStreamingBackend(*ingestor);
    auto report = QueryEngine().Run(backend.get(), Env().queries);
    STREACH_CHECK(report.ok());
    return new std::vector<ReachAnswer>(std::move(report->answers));
  }();
  return *answers;
}

bool SameAnswers(const std::vector<ReachAnswer>& a,
                 const std::vector<ReachAnswer>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].reachable != b[i].reachable ||
        a[i].arrival_time != b[i].arrival_time) {
      return false;
    }
  }
  return true;
}

struct Row {
  int seal_interval;
  int shards;
  std::string codec;
  uint64_t contacts;
  double ingest_seconds;
  double contacts_per_sec;
  uint64_t sealed_segments;
  uint64_t sealed_contacts;
  uint64_t head_contacts;
  uint64_t stored_bytes;
  bool matches_batch;
  double query_seconds;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

void StreamingIngest(benchmark::State& state) {
  const PageCodecKind codec = state.range(2) == 0
                                  ? PageCodecKind::kRaw
                                  : PageCodecKind::kDeltaVarint;
  StreamingOptions options;
  options.num_objects = Env().dataset.num_objects();
  options.span = Env().dataset.span();
  options.seal_interval_ticks = static_cast<int>(state.range(0));
  options.num_shards = static_cast<int>(state.range(1));
  options.build.page_codec = codec;
  for (auto _ : state) {
    auto ingestor = StreamingIngestor::Create(options);
    STREACH_CHECK(ingestor.ok());
    Stopwatch ingest_watch;
    for (const Contact& c : Arrivals()) {
      STREACH_CHECK((*ingestor)->Append(c).ok());
    }
    STREACH_CHECK((*ingestor)->SealRemaining().ok());
    const double ingest_seconds = ingest_watch.ElapsedSeconds();

    auto backend = MakeStreamingBackend(*ingestor);
    QueryEngineOptions engine_options;
    engine_options.page_codec = codec;
    Stopwatch query_watch;
    auto report =
        QueryEngine(engine_options).Run(backend.get(), Env().queries);
    STREACH_CHECK(report.ok());
    const double query_seconds = query_watch.ElapsedSeconds();

    const uint64_t contacts = (*ingestor)->appended_contacts();
    Rows().push_back(
        {options.seal_interval_ticks, options.num_shards, ToString(codec),
         contacts, ingest_seconds,
         ingest_seconds > 0 ? contacts / ingest_seconds : 0.0,
         (*ingestor)->sealed_segments(), (*ingestor)->sealed_contacts(),
         (*ingestor)->head_contacts(), (*ingestor)->stored_bytes(),
         SameAnswers(report->answers, ReferenceAnswers()), query_seconds});
  }
}

// seal: ticks of stream time per sealed segment; codec: 0 = raw,
// 1 = delta-varint.
BENCHMARK(StreamingIngest)
    ->ArgsProduct({{16, 64, 256}, {1, 4}, {0, 1}})
    ->ArgNames({"seal", "shards", "codec"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"seal_interval\": %d, \"shards\": %d, \"codec\": \"%s\", "
        "\"contacts\": %llu, \"ingest_seconds\": %.6f, "
        "\"contacts_per_sec\": %.1f, \"sealed_segments\": %llu, "
        "\"sealed_contacts\": %llu, \"head_contacts\": %llu, "
        "\"stored_bytes\": %llu, \"matches_batch\": %s, "
        "\"query_seconds\": %.6f}%s\n",
        r.seal_interval, r.shards, r.codec.c_str(),
        static_cast<unsigned long long>(r.contacts), r.ingest_seconds,
        r.contacts_per_sec,
        static_cast<unsigned long long>(r.sealed_segments),
        static_cast<unsigned long long>(r.sealed_contacts),
        static_cast<unsigned long long>(r.head_contacts),
        static_cast<unsigned long long>(r.stored_bytes),
        r.matches_batch ? "true" : "false", r.query_seconds,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

void PrintStreamingTable() {
  std::printf("\n%-6s %7s %8s %10s %12s %9s %12s %8s %10s\n", "Seal",
              "Shards", "Codec", "Contacts", "ingest/s", "Segments",
              "stored(B)", "match", "query(ms)");
  for (const Row& r : Rows()) {
    std::printf("%-6d %7d %8s %10llu %12.0f %9llu %12llu %8s %10.2f\n",
                r.seal_interval, r.shards, r.codec.c_str(),
                static_cast<unsigned long long>(r.contacts),
                r.contacts_per_sec,
                static_cast<unsigned long long>(r.sealed_segments),
                static_cast<unsigned long long>(r.stored_bytes),
                r.matches_batch ? "yes" : "NO", r.query_seconds * 1e3);
  }
  WriteJson("BENCH_streaming.json");
  std::printf("Wrote BENCH_streaming.json (%zu cells)\n", Rows().size());
}

}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Streaming ingestion — head-segment append throughput and sealed "
      "query equivalence under seal_interval x shards x codec",
      "(beyond the paper) an LSM-style mutable head absorbs the contact "
      "stream and seals through the batch write stack without changing "
      "a single answer");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  streach::bench::PrintStreamingTable();
  return 0;
}
