// Build-side scaling sweep: construction wall time and write profile of
// every disk-resident index family under build_workers x
// write_queue_depth x num_shards.
//
// Not a paper experiment — this charts the write-side half of the IO
// model (PR 4): per-shard build workers fan placement units out across
// the shard devices, and deep write queues keep several finished pages
// in flight per shard. Every cell rebuilds its index from scratch with
// that configuration; the on-disk images (and therefore all answers) are
// identical across cells — only wall time and the write profile move,
// which is exactly what the emitted BENCH_build_scaling.json records.
// On a single-core host the workers axis is flat; run on a multi-core
// box to chart the construction speedup the per-shard lanes buy.
// docs/BENCH_SCHEMA.md documents every field.
//
// Set STREACH_BENCH_TINY=1 to run a reduced dataset — the CI bench-smoke
// configuration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/grail.h"
#include "baselines/spj.h"
#include "bench_common.h"
#include "reachgraph/dn_builder.h"
#include "reachgraph/reach_graph_index.h"
#include "reachgrid/reach_grid_index.h"

namespace streach {
namespace bench {
namespace {

bool TinyMode() {
  const char* tiny = std::getenv("STREACH_BENCH_TINY");
  return tiny != nullptr && tiny[0] != '\0' && tiny[0] != '0';
}

BenchEnv& Env() {
  static BenchEnv env = TinyMode()
                            ? MakeEnv("RWP", DatasetScale::kSmall,
                                      /*duration=*/300, /*num_queries=*/0)
                            : MakeEnv("RWP", DatasetScale::kMedium,
                                      /*duration=*/1000, /*num_queries=*/0);
  return env;
}

/// The DN graph is shared input (its reduction is not the write path
/// under test), so it is built once per process.
const DnGraph& SharedDn() {
  static const DnGraph* dn = [] {
    auto graph = BuildDnGraph(*Env().network);
    STREACH_CHECK(graph.ok());
    return new DnGraph(std::move(graph).ValueUnsafe());
  }();
  return *dn;
}

struct Row {
  std::string backend;
  int workers;  // 0 = one per shard.
  int depth;
  int shards;
  double build_seconds;
  uint64_t pages_written;
  uint64_t batched_writes;
  double mean_write_inflight;
};
std::vector<Row>& Rows() {
  static std::vector<Row> rows;
  return rows;
}

BuildOptions CellBuildOptions(const benchmark::State& state) {
  BuildOptions build;
  build.build_workers = static_cast<int>(state.range(0));
  build.write_queue_depth = static_cast<int>(state.range(1));
  return build;
}

void Record(const benchmark::State& state, const std::string& name,
            double seconds, const std::vector<IoStats>& build_io) {
  IoStats total;
  for (const IoStats& shard : build_io) total += shard;
  Rows().push_back({name, static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)),
                    static_cast<int>(state.range(2)), seconds,
                    total.total_writes(), total.batched_writes,
                    total.mean_write_inflight()});
}

void GridBuild(benchmark::State& state) {
  ReachGridOptions options;
  options.temporal_resolution = 20;
  options.spatial_cell_size = 1024.0;
  options.contact_range = Env().dataset.contact_range;
  options.num_shards = static_cast<int>(state.range(2));
  options.build = CellBuildOptions(state);
  for (auto _ : state) {
    auto index = ReachGridIndex::Build(Env().dataset.store, options);
    STREACH_CHECK(index.ok());
    Record(state, "ReachGrid", (*index)->build_stats().build_seconds,
           (*index)->build_io_stats());
  }
}

void GraphBuild(benchmark::State& state) {
  ReachGraphOptions options;
  options.num_shards = static_cast<int>(state.range(2));
  options.build = CellBuildOptions(state);
  for (auto _ : state) {
    // BuildFromDn measures partitioning + serialization — the write
    // path — not the shared reduction.
    auto index = ReachGraphIndex::BuildFromDn(SharedDn(), options);
    STREACH_CHECK(index.ok());
    Record(state, "ReachGraph",
           (*index)->build_stats().placement_seconds,
           (*index)->build_io_stats());
  }
}

void GrailBuild(benchmark::State& state) {
  GrailOptions options;
  options.num_shards = static_cast<int>(state.range(2));
  options.build = CellBuildOptions(state);
  for (auto _ : state) {
    auto index = GrailIndex::Build(SharedDn(), options);
    STREACH_CHECK(index.ok());
    Record(state, "GRAIL", (*index)->build_seconds(),
           (*index)->build_io_stats());
  }
}

void SpjBuild(benchmark::State& state) {
  SpjOptions options;
  options.contact_range = Env().dataset.contact_range;
  options.num_shards = static_cast<int>(state.range(2));
  options.build = CellBuildOptions(state);
  for (auto _ : state) {
    auto spj = SpjEvaluator::Build(Env().dataset.store, options);
    STREACH_CHECK(spj.ok());
    Record(state, "SPJ", (*spj)->build_seconds(), (*spj)->build_io_stats());
  }
}

// workers: 1 = the historical inline build, 0 = one worker per shard;
// depth: 1 = synchronous WritePage, 8 = batched write queues.
#define STREACH_BUILD_SWEEP(fn)                          \
  BENCHMARK(fn)                                          \
      ->ArgsProduct({{1, 0}, {1, 8}, {1, 4}})            \
      ->ArgNames({"workers", "depth", "shards"})         \
      ->Iterations(1)                                    \
      ->Unit(benchmark::kMillisecond)

STREACH_BUILD_SWEEP(GridBuild);
STREACH_BUILD_SWEEP(GraphBuild);
STREACH_BUILD_SWEEP(GrailBuild);
STREACH_BUILD_SWEEP(SpjBuild);

#undef STREACH_BUILD_SWEEP

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"backend\": \"%s\", \"workers\": %d, \"depth\": %d, "
        "\"shards\": %d, \"build_seconds\": %.6f, "
        "\"pages_written\": %llu, \"batched_writes\": %llu, "
        "\"mean_write_inflight\": %.3f}%s\n",
        r.backend.c_str(), r.workers, r.depth, r.shards, r.build_seconds,
        static_cast<unsigned long long>(r.pages_written),
        static_cast<unsigned long long>(r.batched_writes),
        r.mean_write_inflight, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

void PrintBuildTable() {
  std::printf("\n%-12s %8s %6s %7s %12s %10s %10s %10s\n", "Backend",
              "Workers", "Depth", "Shards", "build(ms)", "pages",
              "batched", "inflight");
  for (const Row& r : Rows()) {
    std::printf("%-12s %8d %6d %7d %12.2f %10llu %10llu %10.2f\n",
                r.backend.c_str(), r.workers, r.depth, r.shards,
                r.build_seconds * 1e3,
                static_cast<unsigned long long>(r.pages_written),
                static_cast<unsigned long long>(r.batched_writes),
                r.mean_write_inflight);
  }
  WriteJson("BENCH_build_scaling.json");
  std::printf("Wrote BENCH_build_scaling.json (%zu cells)\n", Rows().size());
}

}  // namespace bench
}  // namespace streach

int main(int argc, char** argv) {
  streach::bench::PrintHeader(
      "Build scaling — construction wall time under build_workers x "
      "write_queue_depth x num_shards",
      "(beyond the paper) per-shard build workers and deep write queues "
      "speed up construction without changing a byte of the on-disk "
      "image");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  streach::bench::PrintBuildTable();
  return 0;
}
