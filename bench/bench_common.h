#ifndef STREACH_BENCH_BENCH_COMMON_H_
#define STREACH_BENCH_BENCH_COMMON_H_

// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Every binary prints (a) a header identifying the paper experiment it
// reproduces, (b) a paper-style results table with the measured values,
// and (c) google-benchmark timings where wall-clock matters. Datasets are
// generated once per process and cached.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "engine/backends.h"
#include "engine/query_engine.h"
#include "engine/reachability_index.h"
#include "generators/datasets.h"
#include "generators/workload.h"
#include "join/contact_extractor.h"
#include "network/contact_network.h"

namespace streach {
namespace bench {

/// Prints the experiment banner: which table/figure of the paper this
/// binary regenerates and what the paper reports.
inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("stReach reproduction — %s\n", experiment.c_str());
  std::printf("Paper result: %s\n", paper_claim.c_str());
  std::printf("Simulated disk: 4 KB pages; IO normalized as random + seq/20\n");
  std::printf("================================================================\n");
}

/// Default worker count for the contact-extraction front end: every
/// available core, capped at 8 (the join saturates memory bandwidth well
/// before wide fan-out pays off). 1 on hosts that do not report a count.
inline int DefaultJoinThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 8u));
}

/// A dataset with its derived contact network and a §6-style workload.
struct BenchEnv {
  Dataset dataset;
  std::unique_ptr<ContactNetwork> network;
  std::vector<ReachQuery> queries;
};

/// Builds (once) and returns the environment for a dataset preset.
/// `which` is "RWP" or "VN" or "VNR"; scale ignored for VNR.
/// `join_threads` parallelizes the contact extraction feeding the
/// network (0 = DefaultJoinThreads()); the contact set is identical at
/// every value.
inline BenchEnv MakeEnv(const std::string& which, DatasetScale scale,
                        Timestamp duration, int num_queries,
                        int min_interval = 150, int max_interval = 350,
                        bool build_network = true, int join_threads = 0) {
  Result<Dataset> dataset = which == "RWP" ? MakeRwpDataset(scale, duration)
                            : which == "VN" ? MakeVnDataset(scale, duration)
                                            : MakeVnrDataset(duration);
  STREACH_CHECK(dataset.ok());
  BenchEnv env{std::move(dataset).ValueUnsafe(), nullptr, {}};
  if (build_network) {
    JoinOptions join;
    join.threads = join_threads > 0 ? join_threads : DefaultJoinThreads();
    env.network = std::make_unique<ContactNetwork>(
        env.dataset.num_objects(), env.dataset.span(),
        ExtractContacts(env.dataset.store, env.dataset.contact_range, join));
  }
  if (num_queries > 0) {
    WorkloadParams wl;
    wl.num_queries = num_queries;
    wl.num_objects = env.dataset.num_objects();
    wl.span = env.dataset.span();
    wl.min_interval_len = min_interval;
    wl.max_interval_len = max_interval;
    wl.seed = 4242;
    env.queries = GenerateWorkload(wl);
  }
  return env;
}

/// Runs `queries` against any `ReachabilityIndex` backend through the
/// QueryEngine and returns the aggregated summary. `cold` clears the
/// session's buffer pool before every query — the paper's per-query IO
/// measurement protocol (each query starts with an empty buffer).
/// `io_queue_depth` > 1 turns on the batched async read path.
inline WorkloadSummary RunThroughEngine(
    ReachabilityIndex* backend, const std::vector<ReachQuery>& queries,
    bool cold = true, int threads = 1, int io_queue_depth = 1,
    PageCodecKind page_codec = PageCodecKind::kRaw) {
  QueryEngineOptions options;
  options.cold_cache = cold;
  options.num_threads = threads;
  options.io_queue_depth = io_queue_depth;
  options.page_codec = page_codec;
  auto report = QueryEngine(options).Run(backend, queries);
  STREACH_CHECK(report.ok());
  return report->summary;
}

/// Percentage improvement of `ours` over `baseline` (positive = better).
inline double ImprovementPct(double ours, double baseline) {
  if (baseline <= 0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

}  // namespace bench
}  // namespace streach

#endif  // STREACH_BENCH_BENCH_COMMON_H_
